// Package rom builds certified reduced-order thermal models from the
// assembled finite-volume operator — the "RC tier" of the fidelity
// ladder. A Model is a Galerkin projection of A·T = b onto block
// aggregation modes (uniform x/y blocks × z bands, or per-tier bands
// supplied by the caller): with P the block indicator basis, the
// reduced system Ar·y = Pᵀb with Ar = PᵀAP is exactly the aggregated
// RC network of the stack — cross-block face conductances survive,
// intra-block ones cancel — so Ar assembles in one O(n) pass over the
// faces and solves by dense Cholesky in microseconds.
//
// Every evaluation carries a certified error bound. For the grounded
// Laplacian A, (A⁻¹)cc is the effective resistance from cell c to the
// thermal ground (the anchored boundaries), which by Rayleigh
// monotonicity is at most the resistance of any single path — Reduce
// computes the cheapest path resistance R_c with a multi-source
// Dijkstra over the face-conductance graph. Since A⁻¹ is SPD,
// |(A⁻¹)cd| ≤ √((A⁻¹)cc·(A⁻¹)dd) ≤ √R_c·√R_d, so the error
// e = A⁻¹·r of any candidate field with residual r = b − A·x obeys
//
//	|e_c| ≤ √R_c · Σ_d √R_d·|r_d|  =  √R_c · S.
//
// The bound holds for any x whatsoever — it certifies the ROM answer
// without trusting the reduction, and Certify applies the same
// machinery to a full solve so cross-fidelity comparisons can account
// for the full solver's own tolerance.
package rom

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"thermalscaffold/internal/solver"
)

// DefaultBlocks is the per-axis aggregation resolution used when an
// Options field is zero.
const DefaultBlocks = 8

// Options configures the aggregation basis.
type Options struct {
	// BlocksX, BlocksY, ZBands set the uniform block counts per axis
	// (clamped to the grid dimensions; zero means DefaultBlocks).
	BlocksX, BlocksY, ZBands int
	// ZBandOf, when non-nil, assigns each z layer an explicit band
	// index in [0, ZBands) — the per-tier aggregation used by the
	// stack scorer. Must have one entry per grid layer.
	ZBandOf []int
}

func (o Options) normalized(nx, ny, nz int) (Options, error) {
	def := func(v, lim int) int {
		if v <= 0 {
			v = DefaultBlocks
		}
		if v > lim {
			v = lim
		}
		return v
	}
	o.BlocksX = def(o.BlocksX, nx)
	o.BlocksY = def(o.BlocksY, ny)
	if o.ZBandOf != nil {
		if len(o.ZBandOf) != nz {
			return o, fmt.Errorf("rom: ZBandOf has %d entries, want %d", len(o.ZBandOf), nz)
		}
		bands := 0
		for k, b := range o.ZBandOf {
			if b < 0 {
				return o, fmt.Errorf("rom: ZBandOf[%d] = %d is negative", k, b)
			}
			if b+1 > bands {
				bands = b + 1
			}
		}
		o.ZBands = bands
	} else {
		o.ZBands = def(o.ZBands, nz)
	}
	return o, nil
}

// Model is a reduced RC model of one assembled problem. It is
// immutable after Reduce and safe for concurrent Eval/Certify calls.
type Model struct {
	asm   *solver.Assembled
	n     int     // full-order cells
	nm    int     // reduced modes (non-empty blocks)
	group []int32 // cell → mode index
	chol  []float64
	// cholT mirrors chol transposed (row i holds column i of L), so
	// back-substitution walks memory with unit stride.
	cholT []float64
	// brBound is Pᵀ·bBound, the reduced boundary rhs; bBound is the
	// full-order boundary rhs view used to form b without re-deriving
	// cell metrics.
	brBound []float64
	bBound  []float64
	// sqrtR[c] = √R_c, the certified bound weight of cell c.
	sqrtR    []float64
	maxSqrtR float64
	// blockMaxSqrtR[g] = max over cells of block g — the per-block
	// bound weight.
	blockMaxSqrtR []float64
	vols          []float64
	totalVol      float64
	// blockVol[g] = Σ vols over block g, so MeanT needs only a
	// per-block pass.
	blockVol []float64
	opts     Options
	// For a blockwise-constant x = P·y, intra-block face terms of A·x
	// are exactly zero, so (A·x)_c = diagC[c]·y[group[c]] −
	// Σ_i csrG[i]·y[csrGd[i]] with diagC = bdiag + incident cross-face
	// conductances and csrPtr/csrG/csrGd the per-cell CSR of cross-
	// block faces. Eval's defect runs on this instead of the full
	// 7-point apply (Certify keeps the apply: its field is arbitrary).
	diagC  []float64
	csrPtr []int32
	csrG   []float64
	csrGd  []int32
	// scratch pools the n-length work vectors (rhs, and a residual for
	// Certify) so steady inner-loop calls don't churn the allocator.
	scratch sync.Pool
}

// evalScratch is one pooled pair of full-order work vectors.
type evalScratch struct{ b, r []float64 }

func (m *Model) getScratch() *evalScratch {
	if v := m.scratch.Get(); v != nil {
		return v.(*evalScratch)
	}
	return &evalScratch{b: make([]float64, m.n), r: make([]float64, m.n)}
}

// evalChunks is the fixed decomposition of Eval's full-order passes.
// Partial sums combine in chunk order, so results are bitwise
// identical whether chunks run serially (small grids) or on
// goroutines — the decomposition never depends on GOMAXPROCS.
const evalChunks = 8

// chunkBounds returns the half-open cell range of chunk i.
func (m *Model) chunkBounds(i int) (lo, hi int) {
	sz := (m.n + evalChunks - 1) / evalChunks
	lo = i * sz
	hi = lo + sz
	if lo > m.n {
		lo = m.n
	}
	if hi > m.n {
		hi = m.n
	}
	return lo, hi
}

// runChunks executes work(0..evalChunks-1), concurrently when
// parallel is set. Chunks touch disjoint state, so scheduling order
// cannot affect the result.
func runChunks(parallel bool, work func(chunk int)) {
	if !parallel {
		for i := 0; i < evalChunks; i++ {
			work(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(evalChunks)
	for i := 0; i < evalChunks; i++ {
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// parallelEvalFloor is the cell count above which Eval's passes are
// worth spreading across goroutines.
const parallelEvalFloor = 1 << 14

// Reduce validates p, assembles its operator, and builds the reduced
// model: block assignment, one-pass Galerkin assembly of Ar = PᵀAP,
// dense Cholesky factorization, and the Dijkstra pass for the
// certified bound weights. Cost is O(n log n) once per problem
// family; the model depends only on geometry/materials/boundaries,
// never on the source field, so it can be reused across power maps.
func Reduce(p *solver.Problem, opt Options) (*Model, error) {
	asm, err := solver.Assemble(p)
	if err != nil {
		return nil, err
	}
	return reduce(asm, opt)
}

func reduce(asm *solver.Assembled, opt Options) (*Model, error) {
	nx, ny, nz := asm.Dims()
	opt, err := opt.normalized(nx, ny, nz)
	if err != nil {
		return nil, err
	}
	n := asm.NumCells()
	bx, by := opt.BlocksX, opt.BlocksY

	// Block assignment: uniform index blocks in x/y, z bands either
	// uniform or caller-supplied. Raw block ids are compacted to the
	// occupied set so explicit bands with gaps cannot produce empty
	// (singular) modes.
	raw := make([]int32, n)
	nraw := bx * by * opt.ZBands
	occupied := make([]int32, nraw)
	for i := range occupied {
		occupied[i] = -1
	}
	c := 0
	for k := 0; k < nz; k++ {
		band := k * opt.ZBands / nz
		if opt.ZBandOf != nil {
			band = opt.ZBandOf[k]
		}
		for j := 0; j < ny; j++ {
			gj := j * by / ny
			for i := 0; i < nx; i++ {
				gi := i * bx / nx
				raw[c] = int32((band*by+gj)*bx + gi)
				occupied[raw[c]] = 0
				c++
			}
		}
	}
	nm := 0
	for g, occ := range occupied {
		if occ == 0 {
			occupied[g] = int32(nm)
			nm++
		}
	}
	group := raw
	for c := range group {
		group[c] = occupied[group[c]]
	}

	// One-pass Galerkin assembly: Ar = PᵀAP. A face conductance g
	// between cells in the same block contributes g+g−g−g = 0, so only
	// cross-block faces and the boundary conductance survive — Ar is
	// literally the aggregated RC network.
	gxp, gyp, gzp := asm.FaceConductances()
	bdiag := asm.BoundaryConductance()
	ar := make([]float64, nm*nm)
	sy, sz := nx, nx*ny
	var faceA, faceB []int32
	var faceG []float64
	cross := func(a, b int, g float64) {
		faceA = append(faceA, int32(a))
		faceB = append(faceB, int32(b))
		faceG = append(faceG, g)
	}
	for c := 0; c < n; c++ {
		gc := int(group[c])
		if g := gxp[c]; g != 0 {
			if gd := int(group[c+1]); gd != gc {
				ar[gc*nm+gc] += g
				ar[gd*nm+gd] += g
				ar[gc*nm+gd] -= g
				ar[gd*nm+gc] -= g
				cross(c, c+1, g)
			}
		}
		if g := gyp[c]; g != 0 {
			if gd := int(group[c+sy]); gd != gc {
				ar[gc*nm+gc] += g
				ar[gd*nm+gd] += g
				ar[gc*nm+gd] -= g
				ar[gd*nm+gc] -= g
				cross(c, c+sy, g)
			}
		}
		if g := gzp[c]; g != 0 {
			if gd := int(group[c+sz]); gd != gc {
				ar[gc*nm+gc] += g
				ar[gd*nm+gd] += g
				ar[gc*nm+gd] -= g
				ar[gd*nm+gc] -= g
				cross(c, c+sz, g)
			}
		}
		ar[gc*nm+gc] += bdiag[c]
	}
	if err := choleskyInPlace(ar, nm); err != nil {
		return nil, err
	}
	cholT := make([]float64, nm*nm)
	for i := 0; i < nm; i++ {
		for j := 0; j <= i; j++ {
			cholT[j*nm+i] = ar[i*nm+j]
		}
	}

	// Per-cell CSR of the cross-block faces (both endpoints of each
	// face, neighbor stored as its mode index) plus the effective
	// diagonal diagC = bdiag + incident cross conductances — Eval's
	// fast defect walks this instead of the 7-point stencil.
	diagC := append([]float64(nil), bdiag...)
	csrPtr := make([]int32, n+1)
	for f := range faceG {
		diagC[faceA[f]] += faceG[f]
		diagC[faceB[f]] += faceG[f]
		csrPtr[faceA[f]+1]++
		csrPtr[faceB[f]+1]++
	}
	for c := 0; c < n; c++ {
		csrPtr[c+1] += csrPtr[c]
	}
	csrG := make([]float64, 2*len(faceG))
	csrGd := make([]int32, 2*len(faceG))
	cur := append([]int32(nil), csrPtr[:n]...)
	for f := range faceG {
		a, b, g := faceA[f], faceB[f], faceG[f]
		csrG[cur[a]], csrGd[cur[a]] = g, group[b]
		cur[a]++
		csrG[cur[b]], csrGd[cur[b]] = g, group[a]
		cur[b]++
	}

	// Certified bound weights: R_c = cheapest path resistance from
	// cell c to the anchored boundary, via multi-source Dijkstra with
	// edge weight 1/g_face and source weight 1/bdiag.
	sqrtR, err := pathResistance(n, nx, ny, nz, gxp, gyp, gzp, bdiag)
	if err != nil {
		return nil, err
	}

	m := &Model{
		asm:           asm,
		n:             n,
		nm:            nm,
		group:         group,
		chol:          ar,
		cholT:         cholT,
		brBound:       make([]float64, nm),
		sqrtR:         sqrtR,
		blockMaxSqrtR: make([]float64, nm),
		vols:          asm.CellVolumes(),
		blockVol:      make([]float64, nm),
		opts:          opt,
		diagC:         diagC,
		csrPtr:        csrPtr,
		csrG:          csrG,
		csrGd:         csrGd,
	}
	bBound := asm.BoundaryRHS()
	m.bBound = bBound
	for c := 0; c < n; c++ {
		g := group[c]
		m.brBound[g] += bBound[c]
		if sqrtR[c] > m.blockMaxSqrtR[g] {
			m.blockMaxSqrtR[g] = sqrtR[c]
		}
		if sqrtR[c] > m.maxSqrtR {
			m.maxSqrtR = sqrtR[c]
		}
		m.blockVol[g] += m.vols[c]
		m.totalVol += m.vols[c]
	}
	return m, nil
}

// NumModes returns the reduced dimension (occupied block count).
func (m *Model) NumModes() int { return m.nm }

// NumCells returns the full-order cell count.
func (m *Model) NumCells() int { return m.n }

// BlockOf returns the mode index of cell c.
func (m *Model) BlockOf(c int) int { return int(m.group[c]) }

// Result is one certified reduced-order evaluation.
type Result struct {
	// PeakT and MeanT summarize the field (mean is volume-weighted,
	// matching the full pipeline's field statistics).
	PeakT, MeanT float64
	// Bound certifies |peak(T_full) − PeakT| ≤ Bound and, per cell,
	// |T_full(c) − T(c)| ≤ CellBound(c) ≤ Bound.
	Bound float64
	// BlockT[g] is the block temperature estimate; BlockBound[g]
	// certifies the block's cells: |T_full(c) − BlockT[g]| ≤
	// BlockBound[g] for every cell c of block g.
	BlockT, BlockBound []float64
	// RelResidual is ‖b − A·T‖₂/‖b‖₂ — the raw defect behind the
	// bound, useful for telemetry.
	RelResidual float64

	s     float64   // Σ √R·|r|
	sqrtR []float64 // view of the model's weights
	group []int32   // view of the model's cell → mode map
	t     []float64 // lazily materialized full field
	once  sync.Once
}

// CellBound returns the certified per-cell error bound of cell c.
func (r *Result) CellBound(c int) float64 { return r.sqrtR[c] * r.s }

// T returns the reconstructed full-grid field (piecewise constant per
// block), in the solver's temperature units. It is materialized on
// first call — inner-loop callers that only need PeakT, BlockT, or
// the bounds never pay for the full-order expansion.
func (r *Result) T() []float64 {
	r.once.Do(func() {
		x := make([]float64, len(r.group))
		for c, g := range r.group {
			x[c] = r.BlockT[g]
		}
		r.t = x
	})
	return r.t
}

// Eval solves the reduced model for the volumetric source field q
// (W/m³) and certifies the answer against the full operator. All
// accumulation follows a fixed decomposition that never depends on
// GOMAXPROCS, so results are bitwise reproducible regardless of
// machine or worker configuration, and Eval is safe for concurrent
// use.
func (m *Model) Eval(q []float64) (*Result, error) {
	if len(q) != m.n {
		return nil, fmt.Errorf("rom: source field has %d entries, want %d", len(q), m.n)
	}
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	parallel := m.n >= parallelEvalFloor
	// Form b = bBound + q·dV (the same per-cell arithmetic as the full
	// assembly's RHS) and the reduced rhs Pᵀb in one chunked pass,
	// partials combined in chunk order. Every stream is resliced to
	// the chunk's end so the loop indexes without bounds checks.
	// Non-finite sources poison the reduced solve and are diagnosed on
	// that error path, keeping per-cell validation off the hot loop.
	b := sc.b
	group := m.group
	brParts := make([]float64, evalChunks*m.nm)
	var bnParts [evalChunks]float64
	runChunks(parallel, func(ch int) {
		lo, hi := m.chunkBounds(ch)
		if lo >= hi {
			return
		}
		brL := brParts[ch*m.nm : (ch+1)*m.nm]
		bBound, vols, qs, bs, grp := m.bBound[:hi], m.vols[:hi], q[:hi], b[:hi], group[:hi]
		var bnL float64
		for c := lo; c < hi; c++ {
			v := bBound[c] + qs[c]*vols[c]
			bs[c] = v
			bnL += v * v
			brL[grp[c]] += v
		}
		bnParts[ch] = bnL
	})
	br := brParts[:m.nm]
	var bn float64
	for ch := 0; ch < evalChunks; ch++ {
		bn += bnParts[ch]
		if ch > 0 {
			part := brParts[ch*m.nm : (ch+1)*m.nm]
			for g, v := range part {
				br[g] += v
			}
		}
	}
	y := make([]float64, m.nm)
	cholSolve(m.chol, m.cholT, m.nm, br, y)
	for g, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			for c, qv := range q {
				if math.IsNaN(qv) || math.IsInf(qv, 0) {
					return nil, fmt.Errorf("rom: source field has invalid value at cell %d: %g", c, qv)
				}
			}
			return nil, fmt.Errorf("rom: reduced solve produced non-finite temperature in block %d", g)
		}
	}
	// Certify x = P·y in one fixed-order pass without materializing
	// it. Because x is blockwise constant, intra-block face terms of
	// A·x are exactly zero, so the residual at cell c is
	// b[c] − diagC[c]·y[group[c]] plus the cross-block exchanges from
	// the CSR — no 7-point apply, no residual vector, and the full
	// field itself stays lazy (Result.T expands it on demand).
	var sParts, rnParts [evalChunks]float64
	runChunks(parallel, func(ch int) {
		lo, hi := m.chunkBounds(ch)
		if lo >= hi {
			return
		}
		diagC, sqrtR, grp, bs := m.diagC[:hi], m.sqrtR[:hi], group[:hi], b[:hi]
		csrPtr := m.csrPtr[:hi+1]
		csrG, csrGd := m.csrG, m.csrGd
		var sL, rnL float64
		ptr := csrPtr[lo]
		for c := lo; c < hi; c++ {
			ax := diagC[c] * y[grp[c]]
			end := csrPtr[c+1]
			for f := ptr; f < end; f++ {
				ax -= csrG[f] * y[csrGd[f]]
			}
			ptr = end
			d := bs[c] - ax
			sL += sqrtR[c] * math.Abs(d)
			rnL += d * d
		}
		sParts[ch], rnParts[ch] = sL, rnL
	})
	var s, rn float64
	for ch := 0; ch < evalChunks; ch++ {
		s += sParts[ch]
		rn += rnParts[ch]
	}
	if math.IsInf(s, 0) || math.IsNaN(s) {
		return nil, errors.New("rom: certified bound overflowed to non-finite")
	}
	rel := 0.0
	if bn > 0 {
		rel = math.Sqrt(rn) / math.Sqrt(bn)
	}
	// Field statistics reduce to per-block sums: every mode is
	// occupied, so peak(x) = max_g y[g], and the volume-weighted mean
	// uses the per-block volumes accumulated at Reduce time.
	peak, mean := y[0], 0.0
	for g := 0; g < m.nm; g++ {
		if y[g] > peak {
			peak = y[g]
		}
		mean += y[g] * m.blockVol[g]
	}
	res := &Result{
		PeakT:       peak,
		MeanT:       mean / m.totalVol,
		Bound:       m.maxSqrtR * s,
		BlockT:      y,
		BlockBound:  make([]float64, m.nm),
		RelResidual: rel,
		s:           s,
		sqrtR:       m.sqrtR,
		group:       m.group,
	}
	for g := 0; g < m.nm; g++ {
		res.BlockBound[g] = m.blockMaxSqrtR[g] * s
	}
	return res, nil
}

// Certificate bounds the error of an arbitrary candidate field — the
// same machinery Eval uses, applied to e.g. a full iterative solve so
// conformance checks can budget for its tolerance too.
type Certificate struct {
	m *Model
	// S is Σ_d √R_d·|r_d| for the certified field's residual.
	S float64
	// RelResidual is ‖r‖₂/‖b‖₂.
	RelResidual float64
}

// Certify computes the certified error bound of candidate field T for
// source field q: |T_exact(c) − T(c)| ≤ Bound(c) for every cell.
func (m *Model) Certify(q, T []float64) (*Certificate, error) {
	if len(q) != m.n || len(T) != m.n {
		return nil, fmt.Errorf("rom: certify got %d sources and %d temperatures, want %d", len(q), len(T), m.n)
	}
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	b, err := m.asm.RHS(q, sc.b)
	if err != nil {
		return nil, err
	}
	s, rel := m.defect(b, T, sc.r)
	if math.IsInf(s, 0) || math.IsNaN(s) {
		return nil, errors.New("rom: certified bound overflowed to non-finite")
	}
	return &Certificate{m: m, S: s, RelResidual: rel}, nil
}

// Bound returns the certified error bound at cell c.
func (ct *Certificate) Bound(c int) float64 { return ct.m.sqrtR[c] * ct.S }

// PeakBound returns the certified bound on the domain peak error.
func (ct *Certificate) PeakBound() float64 { return ct.m.maxSqrtR * ct.S }

// BlockBound returns the certified bound over the cells of block g.
func (ct *Certificate) BlockBound(g int) float64 { return ct.m.blockMaxSqrtR[g] * ct.S }

// defect computes the residual r = b − A·x via the general 7-point
// apply (x is arbitrary here) and returns the bound sum S = Σ √R·|r|
// plus the relative two-norm residual. r is caller-provided scratch.
func (m *Model) defect(b, x, r []float64) (s, rel float64) {
	m.asm.Apply(x, r)
	var rn, bn float64
	for c := 0; c < m.n; c++ {
		d := b[c] - r[c]
		s += m.sqrtR[c] * math.Abs(d)
		rn += d * d
		bn += b[c] * b[c]
	}
	if bn > 0 {
		rel = math.Sqrt(rn) / math.Sqrt(bn)
	}
	return s, rel
}

// choleskyInPlace factors the dense SPD matrix a (n×n row-major) into
// its lower-triangular Cholesky factor, in place.
func choleskyInPlace(a []float64, n int) error {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if !(d > 0) {
			return fmt.Errorf("rom: reduced operator not SPD at mode %d (pivot %g)", j, d)
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	return nil
}

// cholSolve solves L·Lᵀ·y = b given the factored matrix l and its
// transpose lt; both substitutions then walk rows with unit stride.
// The summation order matches a column-scan of l exactly, so results
// are bitwise identical to the untransposed formulation.
func cholSolve(l, lt []float64, n int, b, y []float64) {
	// Forward: L·z = b.
	for i := 0; i < n; i++ {
		y[i] = (b[i] - dot4(l[i*n:i*n+i], y)) / l[i*n+i]
	}
	// Back: Lᵀ·y = z, reading row i of Lᵀ.
	for i := n - 1; i >= 0; i-- {
		row := lt[i*n+i+1 : i*n+n]
		y[i] = (y[i] - dot4(row, y[i+1:i+1+len(row)])) / lt[i*n+i]
	}
}

// dot4 computes Σ a[k]·x[k] with four independent accumulators so the
// additions pipeline instead of serializing on one add-latency chain.
// The grouping is fixed (stride 4, combined as (s0+s2)+(s1+s3)), so
// the result is deterministic for a given length.
func dot4(a, x []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * x[k]
		s1 += a[k+1] * x[k+1]
		s2 += a[k+2] * x[k+2]
		s3 += a[k+3] * x[k+3]
	}
	for ; k < len(a); k++ {
		s0 += a[k] * x[k]
	}
	return (s0 + s2) + (s1 + s3)
}
