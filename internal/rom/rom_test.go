package rom_test

import (
	"math"
	"strings"
	"testing"

	"thermalscaffold/internal/rom"
	"thermalscaffold/internal/solver"
)

// fullSolve runs the reference multigrid solve at tight tolerance.
func fullSolve(tb testing.TB, p *solver.Problem) *solver.Result {
	tb.Helper()
	res, err := solver.SolveSteady(p, solver.Options{
		Tol: 1e-12, MaxIter: 100000, Precond: solver.Multigrid,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// TestROMExactWhenBlocksMatchGrid: with one block per cell the
// Galerkin projection is the identity, so the "reduced" solve is a
// dense direct solve of the full operator — the ROM must reproduce
// the PCG answer to solver tolerance and certify it with a bound that
// is tiny relative to the temperature rise.
func TestROMExactWhenBlocksMatchGrid(t *testing.T) {
	rng := &eqRNG{s: 0xD1AC}
	p := randomProblem(t, rng, 6, 5, 4)
	m, err := rom.Reduce(p, rom.Options{BlocksX: 6, BlocksY: 5, ZBands: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumModes(), 6*5*4; got != want {
		t.Fatalf("modes = %d, want %d", got, want)
	}
	res, err := m.Eval(p.Q)
	if err != nil {
		t.Fatal(err)
	}
	full := fullSolve(t, p)
	for c := range full.T {
		if d := math.Abs(res.T()[c] - full.T[c]); d > 1e-6 {
			t.Fatalf("cell %d: direct ROM %.9g vs PCG %.9g (Δ %.3g)", c, res.T()[c], full.T[c], d)
		}
	}
	// The direct solve's residual is pure rounding; its certified
	// bound must be far below the physical temperature scale.
	if res.Bound > 1e-6*res.PeakT {
		t.Fatalf("direct-solve bound %.3g not tiny vs peak %.3g", res.Bound, res.PeakT)
	}
	if res.RelResidual > 1e-10 {
		t.Fatalf("direct-solve relative residual %.3g", res.RelResidual)
	}
}

// TestROMBoundIsHardContract: on randomized problems the certified
// per-cell, per-block, and peak bounds must dominate the true
// ROM-vs-full error, after budgeting the full solve's own certified
// tolerance (the full answer is iterative, not exact).
func TestROMBoundIsHardContract(t *testing.T) {
	rng := &eqRNG{s: 0xB0B}
	for round := 0; round < 6; round++ {
		p := randomProblem(t, rng, 10+rng.intn(6), 9+rng.intn(6), 6+rng.intn(4))
		m, err := rom.Reduce(p, rom.Options{BlocksX: 4, BlocksY: 4, ZBands: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Eval(p.Q)
		if err != nil {
			t.Fatal(err)
		}
		full := fullSolve(t, p)
		cert, err := m.Certify(p.Q, full.T)
		if err != nil {
			t.Fatal(err)
		}
		for c := range full.T {
			budget := res.CellBound(c) + cert.Bound(c)
			if d := math.Abs(res.T()[c] - full.T[c]); d > budget {
				t.Fatalf("round %d cell %d: |Δ| %.6g exceeds bound %.6g", round, c, d, budget)
			}
		}
		peakFull := full.T[0]
		for _, v := range full.T {
			if v > peakFull {
				peakFull = v
			}
		}
		if d := math.Abs(res.PeakT - peakFull); d > res.Bound+cert.PeakBound() {
			t.Fatalf("round %d: peak |Δ| %.6g exceeds bound %.6g", round, d, res.Bound+cert.PeakBound())
		}
		for c := range full.T {
			g := m.BlockOf(c)
			budget := res.BlockBound[g] + cert.Bound(c)
			if d := math.Abs(res.BlockT[g] - full.T[c]); d > budget {
				t.Fatalf("round %d cell %d block %d: |Δ| %.6g exceeds block bound %.6g", round, c, g, d, budget)
			}
		}
	}
}

// TestROMDeterministic: reduce+eval twice from scratch must agree
// bitwise — the whole pipeline is serial with fixed accumulation
// order.
func TestROMDeterministic(t *testing.T) {
	rng1 := &eqRNG{s: 0x5EED}
	rng2 := &eqRNG{s: 0x5EED}
	p1 := randomProblem(t, rng1, 12, 11, 7)
	p2 := randomProblem(t, rng2, 12, 11, 7)
	opt := rom.Options{BlocksX: 5, BlocksY: 4, ZBands: 3}
	m1, err := rom.Reduce(p1, opt)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rom.Reduce(p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m1.Eval(p1.Q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Eval(p2.Q)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(r1.T(), r2.T()) || !bitIdentical(r1.BlockT, r2.BlockT) {
		t.Fatal("repeated reduce+eval not bitwise identical")
	}
	if math.Float64bits(r1.Bound) != math.Float64bits(r2.Bound) {
		t.Fatalf("bounds differ: %x vs %x", math.Float64bits(r1.Bound), math.Float64bits(r2.Bound))
	}
	// Concurrent evals on one shared model must also be bitwise
	// stable (serve evaluates one cached model from many goroutines).
	done := make(chan []float64, 4)
	for w := 0; w < 4; w++ {
		go func() {
			r, err := m1.Eval(p1.Q)
			if err != nil {
				done <- nil
				return
			}
			done <- r.T()
		}()
	}
	for w := 0; w < 4; w++ {
		T := <-done
		if T == nil {
			t.Fatal("concurrent eval failed")
		}
		if !bitIdentical(T, r1.T()) {
			t.Fatal("concurrent eval not bitwise identical")
		}
	}
}

// TestROMZBandOf: explicit per-layer bands (the per-tier aggregation)
// must be honored, including non-contiguous band ids.
func TestROMZBandOf(t *testing.T) {
	rng := &eqRNG{s: 0x2B}
	p := randomProblem(t, rng, 8, 8, 6)
	bands := []int{0, 0, 3, 3, 3, 5} // gaps: ids 1,2,4 unused
	m, err := rom.Reduce(p, rom.Options{BlocksX: 2, BlocksY: 2, ZBandOf: bands})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumModes(), 2*2*3; got != want {
		t.Fatalf("modes = %d, want %d (gapped bands must compact)", got, want)
	}
	if _, err := m.Eval(p.Q); err != nil {
		t.Fatal(err)
	}
	g := p.Grid
	// Layers 2,3,4 share a band: same (i,j) block there ⇒ same mode.
	a := m.BlockOf(g.Index(1, 1, 2))
	b := m.BlockOf(g.Index(1, 1, 4))
	if a != b {
		t.Fatalf("layers 2 and 4 should share a band: modes %d vs %d", a, b)
	}
	if m.BlockOf(g.Index(1, 1, 0)) == a {
		t.Fatal("layers 0 and 2 should be distinct bands")
	}
}

// TestROMErrors: malformed inputs must error, never panic.
func TestROMErrors(t *testing.T) {
	rng := &eqRNG{s: 0xE44}
	p := randomProblem(t, rng, 5, 5, 4)

	if _, err := rom.Reduce(p, rom.Options{ZBandOf: []int{0, 1}}); err == nil ||
		!strings.Contains(err.Error(), "ZBandOf") {
		t.Fatalf("short ZBandOf: err = %v", err)
	}
	if _, err := rom.Reduce(p, rom.Options{ZBandOf: []int{0, -1, 0, 0}}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative band: err = %v", err)
	}

	bad := randomProblem(t, rng, 5, 5, 4)
	for f := solver.Face(0); f < 6; f++ {
		bad.Bounds[f] = solver.AdiabaticBC()
	}
	if _, err := rom.Reduce(bad, rom.Options{}); err == nil {
		t.Fatal("unanchored problem must fail validation")
	}

	m, err := rom.Reduce(p, rom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval(p.Q[:10]); err == nil {
		t.Fatal("short source field must error")
	}
	q := append([]float64(nil), p.Q...)
	q[3] = math.NaN()
	if _, err := m.Eval(q); err == nil {
		t.Fatal("NaN source must error")
	}
	q[3] = math.Inf(1)
	if _, err := m.Eval(q); err == nil {
		t.Fatal("Inf source must error")
	}
	if _, err := m.Certify(p.Q, p.Q[:10]); err == nil {
		t.Fatal("short certify field must error")
	}
}
