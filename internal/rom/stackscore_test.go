package rom_test

// StackScorer is the rc tier's entry point for the placement loops:
// these tests pin its contract directly — scores must match a direct
// Reduce+Eval of the built stack problem bitwise, a single shared map
// must replicate exactly, the certified bound must hold against a
// full solve, and malformed inputs must error.

import (
	"math"
	"strings"
	"testing"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/rom"
	"thermalscaffold/internal/stack"
)

// scorerSpec is a small 2-tier stack with a deliberately uneven power
// split so the two tiers are distinguishable in the score.
func scorerSpec(nx, ny, tiers int) *stack.Spec {
	plane := nx * ny
	maps := make([][]float64, tiers)
	for t := range maps {
		pm := make([]float64, plane)
		for i := range pm {
			pm[i] = 40e4 + 5e4*float64(t) + 1e3*float64(i%7)
		}
		maps[t] = pm
	}
	return &stack.Spec{
		DieW: 400e-6, DieH: 400e-6,
		Tiers: tiers, NX: nx, NY: ny,
		PowerMaps:     maps,
		BEOL:          stack.ScaffoldedBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
}

func TestStackScorerCertifiedAgainstFullSolve(t *testing.T) {
	spec := scorerSpec(8, 8, 2)
	scorer, err := rom.NewStackScorer(spec, rom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := scorer.Model().NumCells(), len(p.Q); got != want {
		t.Fatalf("model has %d cells, spec problem has %d", got, want)
	}
	res, err := scorer.Score(spec.PowerMaps)
	if err != nil {
		t.Fatal(err)
	}
	// The scorer paints the same source field stack.Build does, so its
	// score must equal a direct Eval of the built problem bitwise.
	direct, err := scorer.Model().Eval(p.Q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakT != direct.PeakT || res.Bound != direct.Bound {
		t.Fatalf("score (%.17g ± %.17g) differs from direct eval (%.17g ± %.17g)",
			res.PeakT, res.Bound, direct.PeakT, direct.Bound)
	}
	// Hard contract against the full solver, budgeting its tolerance
	// via the same certificate machinery.
	full := fullSolve(t, p)
	cert, err := scorer.Model().Certify(p.Q, full.T)
	if err != nil {
		t.Fatal(err)
	}
	fullPeak := full.T[0]
	for _, v := range full.T {
		if v > fullPeak {
			fullPeak = v
		}
	}
	if d := math.Abs(res.PeakT - fullPeak); d > res.Bound+cert.PeakBound() {
		t.Fatalf("peak error %.3g exceeds certified %.3g + %.3g", d, res.Bound, cert.PeakBound())
	}
	for g := range res.BlockBound {
		if res.BlockBound[g] > res.Bound+1e-12*res.Bound {
			t.Fatalf("block %d bound %.3g exceeds domain bound %.3g", g, res.BlockBound[g], res.Bound)
		}
		if cb := cert.BlockBound(g); cb < 0 || math.IsNaN(cb) {
			t.Fatalf("certificate block %d bound %g", g, cb)
		}
	}
}

func TestStackScorerSharedMapReplicates(t *testing.T) {
	spec := scorerSpec(6, 5, 3)
	pm := spec.PowerMaps[0]
	scorer, err := rom.NewStackScorer(spec, rom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := scorer.Score([][]float64{pm})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := scorer.Score([][]float64{pm, pm, pm})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(shared.T(), explicit.T()) || shared.Bound != explicit.Bound {
		t.Fatal("shared map does not replicate to per-tier maps bitwise")
	}
}

func TestStackScorerErrors(t *testing.T) {
	spec := scorerSpec(6, 5, 3)
	scorer, err := rom.NewStackScorer(spec, rom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := spec.PowerMaps[0]
	if _, err := scorer.Score([][]float64{pm, pm}); err == nil ||
		!strings.Contains(err.Error(), "power maps") {
		t.Fatalf("2 maps for 3 tiers: got %v", err)
	}
	if _, err := scorer.Score([][]float64{pm[:7]}); err == nil ||
		!strings.Contains(err.Error(), "cells") {
		t.Fatalf("short plane: got %v", err)
	}
	bad := scorerSpec(0, 5, 2) // invalid grid must fail at Build
	if _, err := rom.NewStackScorer(bad, rom.Options{}); err == nil {
		t.Fatal("invalid spec must error")
	}
}

// TestROMEvalParallelPath drives Eval above the goroutine-chunking
// floor (2^14 cells). The decomposition is fixed regardless of how
// chunks are scheduled, so the only observable difference from small
// grids must be speed: results stay finite, bitwise repeatable, and
// certified against the operator.
func TestROMEvalParallelPath(t *testing.T) {
	p := romBenchStack(t, 24) // 24×24×38 = 21888 cells
	m, err := rom.Reduce(p, rom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Eval(p.Q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PeakT) || math.IsNaN(res.Bound) || res.Bound < 0 {
		t.Fatalf("peak %g bound %g", res.PeakT, res.Bound)
	}
	res2, err := m.Eval(p.Q)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(res.T(), res2.T()) || res.Bound != res2.Bound || res.RelResidual != res2.RelResidual {
		t.Fatal("chunked eval not bitwise repeatable")
	}
	cert, err := m.Certify(p.Q, res.T())
	if err != nil {
		t.Fatal(err)
	}
	// Certify runs the general 7-point apply on the same field the
	// fast in-Eval defect certified; the two residual paths must agree
	// to rounding.
	if d := math.Abs(cert.PeakBound() - res.Bound); d > 1e-9*res.Bound {
		t.Fatalf("apply-path bound %.17g vs fast-path bound %.17g", cert.PeakBound(), res.Bound)
	}
}
