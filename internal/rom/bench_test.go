package rom_test

// Fidelity-ladder benchmarks on the solver suite's 12-tier chip stack
// (mirrored from internal/solver's benchStack — test helpers cannot
// be imported across packages). BenchmarkROMEval/n=64 is the headline
// rc-vs-full comparison: its ns/op against
// BenchmarkSteadyPrecond/precond=multigrid/n=64 in BENCH_solver.json,
// with the certified bound (bound_K) and the measured speedup
// (x_vs_full, one full multigrid solve timed in setup) attached as
// custom metrics. The rc tier must be ≥50× faster at n=64.

import (
	"fmt"
	"testing"
	"time"

	"thermalscaffold/internal/mesh"
	"thermalscaffold/internal/rom"
	"thermalscaffold/internal/solver"
)

// romBenchStack mirrors internal/solver benchStack: a 12-tier stack
// at n×n in-plane resolution, handle wafer below, two-phase-like
// convective ZMin.
func romBenchStack(b testing.TB, n int) *solver.Problem {
	b.Helper()
	zb := mesh.NewZLayerBuilder()
	zb.Add("handle", 10e-6, 2)
	for t := 0; t < 12; t++ {
		zb.Add("si", 100e-9, 1)
		zb.Add("beol", 940e-9, 2)
	}
	xs := make([]float64, n+1)
	for i := range xs {
		xs[i] = 690e-6 * float64(i) / float64(n)
	}
	g, err := mesh.New(xs, xs, zb.Bounds())
	if err != nil {
		b.Fatal(err)
	}
	p := solver.NewProblem(g)
	for k := 0; k < g.NZ(); k++ {
		kv, kl := 0.4, 5.6
		switch {
		case k < 2:
			kv, kl = 180, 180
		case (k-2)%3 == 0:
			kv, kl = 30, 65
		}
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				c := g.Index(i, j, k)
				p.SetAniso(c, kl, kv)
				p.Cv[c] = 1.66e6
				if k >= 2 && (k-2)%3 == 0 {
					p.Q[c] = 53e4 / 100e-9
				}
			}
		}
	}
	p.Bounds[solver.ZMin] = solver.ConvectiveBC(1e6, 373.15)
	return p
}

// BenchmarkROMReduce times the one-off model construction (Ar
// assembly, Cholesky, path-resistance Dijkstra) that a fidelity-
// ladder cache amortizes across evals.
func BenchmarkROMReduce(b *testing.B) {
	for _, n := range []int{16, 64} {
		p := romBenchStack(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rom.Reduce(p, rom.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fullSolveNs caches one full multigrid solve's wall time per grid
// size, so repeated b.N calibration runs don't re-pay it.
var fullSolveNs = map[int]float64{}

// BenchmarkROMEval times one certified reduced-order evaluation
// against a pre-built model — the steady inner-loop cost of the rc
// tier — and reports the certified peak bound (bound_K) plus the
// measured speedup over one full multigrid solve of the same problem
// (x_vs_full).
func BenchmarkROMEval(b *testing.B) {
	for _, n := range []int{16, 64} {
		p := romBenchStack(b, n)
		m, err := rom.Reduce(p, rom.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := fullSolveNs[n]; !ok {
			start := time.Now()
			if _, err := solver.SolveSteady(p, solver.Options{Tol: 1e-7, Precond: solver.Multigrid}); err != nil {
				b.Fatal(err)
			}
			fullSolveNs[n] = float64(time.Since(start).Nanoseconds())
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				res, err := m.Eval(p.Q)
				if err != nil {
					b.Fatal(err)
				}
				bound = res.Bound
			}
			b.ReportMetric(bound, "bound_K")
			if b.Elapsed() > 0 {
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(fullSolveNs[n]/perOp, "x_vs_full")
			}
		})
	}
}
