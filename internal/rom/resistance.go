package rom

import (
	"container/heap"
	"errors"
	"math"
)

// pathResistance computes √R_c for every cell, where R_c is the
// cheapest single-path thermal resistance from cell c to the anchored
// boundary: a multi-source Dijkstra over the face-conductance graph
// with edge weight 1/g_face, seeded with 1/bdiag at every cell that
// touches a Dirichlet or convective boundary. By Rayleigh
// monotonicity R_c upper-bounds the effective resistance (A⁻¹)cc,
// which is what the certified error bound needs.
func pathResistance(n, nx, ny, nz int, gxp, gyp, gzp, bdiag []float64) ([]float64, error) {
	dist := make([]float64, n)
	for c := range dist {
		dist[c] = math.Inf(1)
	}
	h := &resHeap{}
	for c := 0; c < n; c++ {
		if bdiag[c] > 0 {
			dist[c] = 1 / bdiag[c]
			h.items = append(h.items, resItem{d: dist[c], c: int32(c)})
		}
	}
	heap.Init(h)
	sy, sz := nx, nx*ny
	relax := func(from int, d, g float64, to int) {
		if g == 0 {
			return
		}
		nd := d + 1/g
		if nd < dist[to] {
			dist[to] = nd
			heap.Push(h, resItem{d: nd, c: int32(to)})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(resItem)
		c := int(it.c)
		if it.d > dist[c] {
			continue // stale entry
		}
		d := it.d
		relax(c, d, gxp[c], c+1)
		if c >= 1 {
			relax(c, d, gxp[c-1], c-1)
		}
		relax(c, d, gyp[c], c+sy)
		if c >= sy {
			relax(c, d, gyp[c-sy], c-sy)
		}
		relax(c, d, gzp[c], c+sz)
		if c >= sz {
			relax(c, d, gzp[c-sz], c-sz)
		}
	}
	out := make([]float64, n)
	for c, r := range dist {
		if math.IsInf(r, 1) {
			// Validate guarantees an anchored face and positive face
			// conductances keep the grid connected, so this is defensive.
			return nil, errors.New("rom: cell unreachable from any anchored boundary")
		}
		out[c] = math.Sqrt(r)
	}
	return out, nil
}

type resItem struct {
	d float64
	c int32
}

// resHeap is a binary min-heap on (distance, cell); the cell index
// tie-break keeps pop order — and therefore the floating-point relax
// order — fully deterministic.
type resHeap struct{ items []resItem }

func (h *resHeap) Len() int { return len(h.items) }
func (h *resHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.d != b.d {
		return a.d < b.d
	}
	return a.c < b.c
}
func (h *resHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resHeap) Push(x any)    { h.items = append(h.items, x.(resItem)) }
func (h *resHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
