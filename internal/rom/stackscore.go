package rom

import (
	"fmt"

	"thermalscaffold/internal/stack"
)

// StackScorer is the RC tier of the placement inner loops: it reduces
// a stack spec once (per-tier z bands, so every tier is its own band
// and the handle wafer another) and then scores candidate power maps
// in microseconds, each score carrying its certified peak bound. The
// model depends only on the spec's geometry and materials — power
// maps enter through the source field — so one scorer serves an
// entire anneal as long as the floorplan only moves power around.
type StackScorer struct {
	m      *Model
	lay    *stack.Layout
	nx, ny int
	tiers  int
}

// NewStackScorer builds the spec's problem and reduces it. BlocksX/Y
// of opt control the in-plane aggregation (defaults apply); the z
// aggregation is always per physical tier, overriding opt's ZBands.
func NewStackScorer(spec *stack.Spec, opt Options) (*StackScorer, error) {
	p, lay, err := spec.Build()
	if err != nil {
		return nil, err
	}
	// Per-tier bands: handle layers (tier −1) share band 0, tier t is
	// band t+1. Memory sub-layers inherit their tier's band.
	bands := make([]int, len(lay.TierOfLayer))
	for k, t := range lay.TierOfLayer {
		bands[k] = t + 1
	}
	opt.ZBandOf = bands
	m, err := Reduce(p, opt)
	if err != nil {
		return nil, err
	}
	return &StackScorer{m: m, lay: lay, nx: spec.NX, ny: spec.NY, tiers: spec.Tiers}, nil
}

// Model returns the underlying reduced model (for Certify against a
// full solve of the same spec).
func (s *StackScorer) Model() *Model { return s.m }

// Score evaluates candidate per-tier power maps (W/m², NX·NY
// row-major, bottom tier first; a single map replicates to all
// tiers). The returned Result's PeakT carries the certified Bound;
// both are in kelvin, matching the full solver's field. Safe for
// concurrent use.
func (s *StackScorer) Score(powerMaps [][]float64) (*Result, error) {
	switch len(powerMaps) {
	case 1, s.tiers:
	default:
		return nil, fmt.Errorf("rom: %d power maps for %d tiers", len(powerMaps), s.tiers)
	}
	plane := s.nx * s.ny
	for t, pm := range powerMaps {
		if len(pm) != plane {
			return nil, fmt.Errorf("rom: power map %d has %d cells, want %d", t, len(pm), plane)
		}
	}
	// Paint the volumetric source field exactly as stack.Build does:
	// tier power lands in the tier's device-silicon layers as
	// areal-power / layer-thickness.
	g := s.lay.Grid
	q := make([]float64, s.m.n)
	for tier := 0; tier < s.tiers; tier++ {
		pm := powerMaps[0]
		if len(powerMaps) > 1 {
			pm = powerMaps[tier]
		}
		for _, k := range s.lay.DeviceLayers[tier] {
			dz := g.DZ(k)
			for j := 0; j < s.ny; j++ {
				for i := 0; i < s.nx; i++ {
					q[g.Index(i, j, k)] = pm[j*s.nx+i] / dz
				}
			}
		}
	}
	return s.m.Eval(q)
}
