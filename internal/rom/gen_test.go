package rom_test

// Randomized problem generator mirroring the solver equivalence
// suite's (test helpers cannot be imported across packages): a
// splitmix64 rng, non-uniform grids, random anisotropic conductivity,
// random BC mixes with guaranteed anchoring, and optional z-interface
// TBR. Keeping the construction identical means the conformance suite
// samples the same input classes the energy-balance tests do.

import (
	"math"
	"testing"

	"thermalscaffold/internal/mesh"
	"thermalscaffold/internal/solver"
)

type eqRNG struct{ s uint64 }

func (r *eqRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *eqRNG) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *eqRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func randomGrid(tb testing.TB, rng *eqRNG, nx, ny, nz int) *mesh.Grid {
	tb.Helper()
	axis := func(n int, pitch float64) []float64 {
		xs := make([]float64, n+1)
		for i := 1; i <= n; i++ {
			xs[i] = xs[i-1] + pitch*(0.5+rng.float())
		}
		return xs
	}
	g, err := mesh.New(axis(nx, 1e-4), axis(ny, 1e-4), axis(nz, 2e-5))
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func randomProblem(tb testing.TB, rng *eqRNG, nx, ny, nz int) *solver.Problem {
	tb.Helper()
	g := randomGrid(tb, rng, nx, ny, nz)
	p := solver.NewProblem(g)
	for c := range p.KX {
		p.KX[c] = 0.5 * math.Pow(10, 2*rng.float())
		p.KY[c] = 0.5 * math.Pow(10, 2*rng.float())
		p.KZ[c] = 0.5 * math.Pow(10, 2*rng.float())
		p.Q[c] = rng.float() * 2e9
		p.Cv[c] = 1e6 * (0.5 + rng.float())
	}
	for f := solver.Face(0); f < 6; f++ {
		switch rng.intn(3) {
		case 0:
			p.Bounds[f] = solver.AdiabaticBC()
		case 1:
			p.Bounds[f] = solver.DirichletBC(280 + 100*rng.float())
		case 2:
			p.Bounds[f] = solver.ConvectiveBC(math.Pow(10, 4+2*rng.float()), 280+100*rng.float())
		}
	}
	if p.Bounds[solver.ZMin].Kind == solver.Adiabatic && p.Bounds[solver.ZMax].Kind == solver.Adiabatic {
		p.Bounds[solver.ZMin] = solver.DirichletBC(300 + 50*rng.float())
	}
	if rng.intn(2) == 0 {
		tbr := make([]float64, nz-1)
		for k := range tbr {
			tbr[k] = rng.float() * 1e-7
		}
		p.ZPlaneTBR = tbr
	}
	return p
}

func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if math.Float64bits(a[c]) != math.Float64bits(b[c]) {
			return false
		}
	}
	return true
}
