package rom_test

// FuzzROMReduce drives randomized problems — including hostile block
// layouts, z-band maps, and power scalings — through reduce → eval →
// certify. Invalid inputs may error, but may never panic; successful
// evals must return finite temperatures, non-negative finite bounds,
// and be deterministic on re-evaluation. Run in `make fuzz-short`;
// the committed corpus under testdata/fuzz replays in plain test runs.

import (
	"math"
	"testing"

	"thermalscaffold/internal/rom"
)

func FuzzROMReduce(f *testing.F) {
	f.Add(uint64(0xB0B), 6, 5, 4, 2, 2, 2, false, 1.0)
	f.Add(uint64(0xC04F), 8, 8, 6, 8, 8, 3, false, 1.0)
	f.Add(uint64(1), 1, 1, 1, 1, 1, 1, false, 0.0)
	f.Add(uint64(42), 5, 4, 6, 3, 1, 4, true, -2.5)
	f.Add(uint64(0xD1AC), 7, 3, 5, 6, 6, 6, true, 1e12)
	f.Add(uint64(99), 4, 4, 3, 2, 3, 1, false, 1e-9)

	f.Fuzz(func(t *testing.T, seed uint64, nx, ny, nz, bx, by, zb int, useBands bool, qScale float64) {
		// Bound the work: dims up to 8, block counts up to 6 keep the
		// dense reduced solve in the microsecond range.
		clamp := func(v, lim int) int {
			if v < 0 {
				v = -v
			}
			return 1 + v%lim
		}
		nx, ny, nz = clamp(nx, 8), clamp(ny, 8), clamp(nz, 8)
		if math.IsNaN(qScale) || math.IsInf(qScale, 0) || math.Abs(qScale) > 1e30 {
			t.Skip()
		}
		rng := &eqRNG{s: seed}
		p := randomProblem(t, rng, nx, ny, nz)
		for c := range p.Q {
			p.Q[c] *= qScale
		}
		opt := rom.Options{BlocksX: clamp(bx, 6), BlocksY: clamp(by, 6), ZBands: clamp(zb, 6)}
		if useBands {
			// Raw, unclamped band ids — gapped, duplicated, and
			// occasionally negative (which must error, not panic).
			bands := make([]int, nz)
			for k := range bands {
				bands[k] = rng.intn(nz+3) - 1
			}
			opt.ZBandOf = bands
		}
		m, err := rom.Reduce(p, opt)
		if err != nil {
			t.Skip() // rejected input; the error path is the test
		}
		res, err := m.Eval(p.Q)
		if err != nil {
			t.Skip()
		}
		finite := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %g not finite (seed %#x, %dx%dx%d, %+v)", name, v, seed, nx, ny, nz, opt)
			}
		}
		finite("PeakT", res.PeakT)
		finite("MeanT", res.MeanT)
		finite("Bound", res.Bound)
		finite("RelResidual", res.RelResidual)
		if res.Bound < 0 || res.RelResidual < 0 {
			t.Fatalf("negative certificate: bound %g, residual %g", res.Bound, res.RelResidual)
		}
		if len(res.BlockT) != m.NumModes() || len(res.BlockBound) != m.NumModes() {
			t.Fatalf("%d block values / %d block bounds for %d modes",
				len(res.BlockT), len(res.BlockBound), m.NumModes())
		}
		for c := range res.T() {
			finite("T", res.T()[c])
			if b := res.CellBound(c); b < 0 || math.IsNaN(b) {
				t.Fatalf("cell %d bound %g", c, b)
			}
			if g := m.BlockOf(c); g < 0 || g >= m.NumModes() {
				t.Fatalf("cell %d assigned to block %d of %d", c, g, m.NumModes())
			}
		}
		for g, b := range res.BlockBound {
			if b < 0 || math.IsNaN(b) {
				t.Fatalf("block %d bound %g", g, b)
			}
		}
		// Determinism: the same model re-evaluated answers bitwise the
		// same, and certifying the rc field itself is error-free.
		res2, err := m.Eval(p.Q)
		if err != nil {
			t.Fatalf("re-eval of accepted input failed: %v", err)
		}
		if !bitIdentical(res.T(), res2.T()) || res.Bound != res2.Bound {
			t.Fatal("re-evaluation not bitwise deterministic")
		}
		cert, err := m.Certify(p.Q, res.T())
		if err != nil {
			t.Fatalf("certify of rc field failed: %v", err)
		}
		finite("cert.PeakBound", cert.PeakBound())
	})
}
