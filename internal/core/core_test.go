package core

import (
	"math"
	"strings"
	"testing"

	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
)

func gemminiCfg() Config {
	return Config{Design: design.Gemmini(), Sink: heatsink.TwoPhase(), NX: 12, NY: 12}
}

func TestStrategyString(t *testing.T) {
	if Conventional3D.String() != "conventional-3D" ||
		VerticalOnly.String() != "vertical-only" ||
		Scaffolding.String() != "scaffolding" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := EvaluateMinPenalty(Config{}, Scaffolding, 4); err == nil {
		t.Error("nil design accepted")
	}
	bad := gemminiCfg()
	bad.Sink = heatsink.Model{Name: "broken"}
	if _, err := EvaluateMinPenalty(bad, Scaffolding, 4); err == nil {
		t.Error("broken sink accepted")
	}
	if _, err := EvaluateMinPenalty(gemminiCfg(), Scaffolding, 0); err == nil {
		t.Error("zero tiers accepted")
	}
	if _, err := EvaluateMinPenalty(gemminiCfg(), Strategy(9), 4); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := EvaluateAtBudget(gemminiCfg(), Scaffolding, 4, -0.1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := EvaluateAtBudget(gemminiCfg(), Strategy(9), 4, 0.1); err == nil {
		t.Error("unknown strategy accepted at budget")
	}
	if _, _, err := MaxTiersAtBudget(gemminiCfg(), Scaffolding, 0.1, 0); err == nil {
		t.Error("zero maxN accepted")
	}
}

// TestTableIHeadline: minimum penalties at 12 Gemmini tiers order as
// the paper's Table I: scaffolding ≪ vertical-only ≪ conventional,
// with scaffolding near 10 % footprint / 3 % delay.
func TestTableIHeadline(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1 // disable scheduling solves for speed (sets spread ≤ 0)

	scaf, err := EvaluateMinPenalty(cfg, Scaffolding, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !scaf.Feasible {
		t.Fatalf("scaffolding 12 tiers infeasible: %v", scaf)
	}
	if scaf.FootprintPenalty < 0.04 || scaf.FootprintPenalty > 0.18 {
		t.Errorf("scaffolding footprint %.1f%%, paper: 10%%", 100*scaf.FootprintPenalty)
	}
	if scaf.DelayPenalty < 0.015 || scaf.DelayPenalty > 0.05 {
		t.Errorf("scaffolding delay %.1f%%, paper: 3%%", 100*scaf.DelayPenalty)
	}

	vert, err := EvaluateMinPenalty(cfg, VerticalOnly, 12)
	if err != nil {
		t.Fatal(err)
	}
	if vert.Feasible && vert.FootprintPenalty < 1.8*scaf.FootprintPenalty {
		t.Errorf("vertical-only (%.1f%%) should cost ≳2x scaffolding (%.1f%%)",
			100*vert.FootprintPenalty, 100*scaf.FootprintPenalty)
	}

	conv, err := EvaluateMinPenalty(cfg, Conventional3D, 12)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Feasible {
		if conv.FootprintPenalty < vert.FootprintPenalty {
			t.Errorf("conventional (%.1f%%) should cost more than vertical-only (%.1f%%)",
				100*conv.FootprintPenalty, 100*vert.FootprintPenalty)
		}
		if conv.FootprintPenalty < 3*scaf.FootprintPenalty {
			t.Errorf("conventional/scaffolding footprint ratio %.1f, paper: 7.8",
				conv.FootprintPenalty/scaf.FootprintPenalty)
		}
		if conv.DelayPenalty < 2*scaf.DelayPenalty {
			t.Errorf("conventional delay %.1f%% should dwarf scaffolding %.1f%%",
				100*conv.DelayPenalty, 100*scaf.DelayPenalty)
		}
	}
}

// TestObservation1TierScaling: at the paper's fair-comparison budget
// (10 % area), scaffolding supports ~3x the tiers of conventional 3D
// thermal.
func TestObservation1TierScaling(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1
	scafN, _, err := MaxTiersAtBudget(cfg, Scaffolding, 0.10, 14)
	if err != nil {
		t.Fatal(err)
	}
	convN, _, err := MaxTiersAtBudget(cfg, Conventional3D, 0.10, 14)
	if err != nil {
		t.Fatal(err)
	}
	if scafN < 10 {
		t.Errorf("scaffolding max tiers %d, paper: 12", scafN)
	}
	if convN > 6 || convN < 2 {
		t.Errorf("conventional max tiers %d, paper: 3-4", convN)
	}
	if ratio := float64(scafN) / float64(convN); ratio < 2 {
		t.Errorf("tier scaling ratio %.1fx, paper: 3-4x", ratio)
	}
}

// TestFig2cIsoPenalty: at iso-10 % footprint and N=12, scaffolding's
// T_j−T_0 is several times below the dummy-via approach.
func TestFig2cIsoPenalty(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1
	scaf, err := EvaluateAtBudget(cfg, Scaffolding, 12, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := EvaluateAtBudget(cfg, Conventional3D, 12, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	t0 := cfg.Sink.AmbientC
	ratio := (conv.TMaxC - t0) / (scaf.TMaxC - t0)
	if ratio < 2.5 {
		t.Errorf("iso-penalty Tj−T0 ratio %.1fx, paper: 10.2x", ratio)
	}
	if !scaf.Feasible {
		t.Error("scaffolding should hold 125°C at 10% and 12 tiers")
	}
	if conv.Feasible {
		t.Error("dummy vias at 10% should blow past 125°C at 12 tiers")
	}
}

// TestBudgetMonotonicity: more budget, cooler chip.
func TestBudgetMonotonicity(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1
	prev := math.Inf(1)
	for _, b := range []float64{0, 0.05, 0.15, 0.30} {
		e, err := EvaluateAtBudget(cfg, Scaffolding, 10, b)
		if err != nil {
			t.Fatal(err)
		}
		if e.TMaxC > prev+0.01 {
			t.Fatalf("budget %g: T=%g rose above %g", b, e.TMaxC, prev)
		}
		prev = e.TMaxC
		if e.FootprintPenalty > b+1e-9 {
			t.Errorf("budget %g exceeded: %g", b, e.FootprintPenalty)
		}
	}
}

// TestConventionalUsesResources: at a budget, the conventional flow
// reports its fill and footprint.
func TestConventionalUsesResources(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1
	e, err := EvaluateAtBudget(cfg, Conventional3D, 8, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if e.FillFraction <= 0.06 {
		t.Errorf("fill %g should exceed the free level at a 30%% budget", e.FillFraction)
	}
	if e.FootprintPenalty <= 0.2 || e.FootprintPenalty > 0.31 {
		t.Errorf("footprint %g should track the budget", e.FootprintPenalty)
	}
}

// TestSchedulingHelpsConventional: enabling the task-spread scheduler
// lowers the conventional peak.
func TestSchedulingHelpsConventional(t *testing.T) {
	base := gemminiCfg()
	base.TaskSpread = -1
	sched := gemminiCfg()
	sched.TaskSpread = 0.3
	e0, err := EvaluateAtBudget(base, Conventional3D, 6, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := EvaluateAtBudget(sched, Conventional3D, 6, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TMaxC >= e0.TMaxC {
		t.Errorf("scheduling did not help: %g vs %g", e1.TMaxC, e0.TMaxC)
	}
}

// TestFujitsuDelayNA: the preliminary design reports delay as n/a.
func TestFujitsuDelayNA(t *testing.T) {
	cfg := Config{Design: design.FujitsuResearch(), Sink: heatsink.TwoPhase(), NX: 12, NY: 12, TaskSpread: -1}
	e, err := EvaluateAtBudget(cfg, Scaffolding, 4, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !e.DelayNA() {
		t.Error("Fujitsu delay should be n/a")
	}
	if !strings.Contains(e.String(), "n/a") {
		t.Errorf("String() should render n/a: %s", e.String())
	}
}

// TestEvaluationString renders all fields.
func TestEvaluationString(t *testing.T) {
	e := &Evaluation{Strategy: Scaffolding, Tiers: 12, TMaxC: 124.9, Feasible: true, FootprintPenalty: 0.099, DelayPenalty: 0.03}
	s := e.String()
	for _, want := range []string{"scaffolding", "N=12", "124.9", "9.9%", "3.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// TestSweepTiersShape: Fig. 9's curves — temperature rises with N and
// scaffolding stays below conventional everywhere.
func TestSweepTiersShape(t *testing.T) {
	cfg := gemminiCfg()
	cfg.TaskSpread = -1
	scaf, err := SweepTiers(cfg, Scaffolding, 0.10, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := SweepTiers(cfg, Conventional3D, 0.10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaf) != 8 || len(conv) != 8 {
		t.Fatalf("sweep lengths %d %d", len(scaf), len(conv))
	}
	for i := 1; i < 8; i++ {
		if scaf[i].TMaxC < scaf[i-1].TMaxC-0.01 {
			t.Errorf("scaffolding temp not monotone at N=%d", i+1)
		}
	}
	for i := 2; i < 8; i++ { // beyond trivial stacks
		if scaf[i].TMaxC >= conv[i].TMaxC {
			t.Errorf("N=%d: scaffolding %g not below conventional %g", i+1, scaf[i].TMaxC, conv[i].TMaxC)
		}
	}
}
