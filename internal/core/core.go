// Package core is the thermal-scaffolding co-design engine — the
// paper's primary contribution. It evaluates the three cooling
// strategies on a design:
//
//   - Conventional3D: thermal-aware metallization (dummy fill /
//     dummy vias), thermal-aware floorplanning, and thermal-aware
//     scheduling — the Sec. III-B baseline.
//   - VerticalOnly: scaffolding pillars placed by the Sec. III-A
//     algorithm but with ultra-low-k dielectric everywhere (the
//     "Vertical Conduction Only" column of Table I).
//   - Scaffolding: pillars plus the nanocrystalline-diamond thermal
//     dielectric in the upper BEOL layers — the full technique.
//
// Two evaluation modes mirror the paper's experiments: minimum
// penalty to reach a temperature target at a tier count (Table I,
// Fig. 2b), and fixed penalty budget with temperature reported
// (Fig. 9/10/11 sweeps).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"thermalscaffold/internal/delay"
	"thermalscaffold/internal/design"
	"thermalscaffold/internal/dummyfill"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/pillar"
	"thermalscaffold/internal/sched"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/telemetry"
	"thermalscaffold/internal/units"
)

// Strategy enumerates the cooling approaches.
type Strategy int

const (
	Conventional3D Strategy = iota
	VerticalOnly
	Scaffolding
)

func (s Strategy) String() string {
	switch s {
	case Conventional3D:
		return "conventional-3D"
	case VerticalOnly:
		return "vertical-only"
	case Scaffolding:
		return "scaffolding"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config holds the shared evaluation parameters.
type Config struct {
	Design *design.Design
	Sink   heatsink.Model
	// TTargetC is the junction limit in °C (default 125, the
	// reliability bound of [6]).
	TTargetC float64
	// NX, NY is the thermal grid resolution (default 16×16).
	NX, NY int
	// TaskSpread is the ±fractional power spread of the scheduled
	// task mix (default 0.15); only the conventional flow exploits it.
	TaskSpread float64
	// Tol is the solver tolerance (default 1e-6).
	Tol float64
	// MaxCoverage caps pillar coverage (default 0.5).
	MaxCoverage float64
	// Ctx, when non-nil, cancels the evaluation: every solve checks it
	// per iteration and the sweep/bisection loops check it between
	// solves, so control returns within one solver iteration of
	// cancellation.
	Ctx context.Context
	// Telemetry, when non-nil, collects solve traces, counters, and
	// fallback logs from every thermal solve the evaluation runs.
	// Observational only — attaching a collector never changes results.
	Telemetry *telemetry.Collector
}

// solverOpts builds the evaluation's standard solver options with the
// cancellation and telemetry hooks attached.
func (c Config) solverOpts() solver.Options {
	return solver.Options{
		Tol: c.Tol, MaxIter: 80000, Precond: solver.Multigrid,
		Ctx: c.Ctx, Telemetry: c.Telemetry,
	}
}

// ctxErr reports a wrapped cancellation error when the evaluation's
// context is done (nil Ctx never cancels).
func (c Config) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return fmt.Errorf("core: evaluation cancelled: %w", err)
	}
	return nil
}

func (c Config) withDefaults() (Config, error) {
	if c.Design == nil {
		return c, errors.New("core: nil design")
	}
	if err := c.Design.Validate(); err != nil {
		return c, err
	}
	if err := c.Sink.Validate(); err != nil {
		return c, err
	}
	if c.TTargetC == 0 {
		c.TTargetC = 125
	}
	if c.NX < 1 {
		c.NX = 16
	}
	if c.NY < 1 {
		c.NY = 16
	}
	if c.TaskSpread == 0 {
		c.TaskSpread = 0.15
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.MaxCoverage <= 0 {
		c.MaxCoverage = 0.5
	}
	return c, nil
}

// Evaluation is the outcome of evaluating one (strategy, tiers)
// point.
type Evaluation struct {
	Strategy Strategy
	Tiers    int
	TMaxC    float64
	// Feasible reports whether TMaxC ≤ the target (minimum-penalty
	// mode) or whether the budgeted resources were applied
	// successfully (budget mode).
	Feasible bool
	// FootprintPenalty is the fractional die-area cost.
	FootprintPenalty float64
	// DelayPenalty is the fractional delay cost (NaN when the design
	// has no timing data).
	DelayPenalty float64
	// MeanCoverage is the pillar metal coverage (pillar strategies).
	MeanCoverage float64
	// FillFraction is the dummy-fill density (conventional strategy).
	FillFraction float64
}

// DelayNA reports whether the delay penalty is not applicable
// (Fujitsu's preliminary design has no timing data — Table I "n/a").
func (e *Evaluation) DelayNA() bool { return math.IsNaN(e.DelayPenalty) }

func (e *Evaluation) String() string {
	d := "n/a"
	if !e.DelayNA() {
		d = fmt.Sprintf("%.1f%%", 100*e.DelayPenalty)
	}
	return fmt.Sprintf("%s N=%d: T=%.1f°C footprint=%.1f%% delay=%s feasible=%v",
		e.Strategy, e.Tiers, e.TMaxC, 100*e.FootprintPenalty, d, e.Feasible)
}

// beolFor returns the homogenized BEOL for a strategy.
func beolFor(s Strategy) stack.BEOLProps {
	if s == Scaffolding {
		return stack.ScaffoldedBEOL()
	}
	return stack.ConventionalBEOL()
}

// delayPenaltyFor converts a footprint/fill outcome into the
// strategy's delay penalty (NaN for designs without timing).
func delayPenaltyFor(cfg Config, s Strategy, footprint, addedFill float64) float64 {
	if cfg.Design.NoTiming {
		return math.NaN()
	}
	switch s {
	case Scaffolding:
		return delay.ScaffoldingPenalty(footprint).Total()
	case VerticalOnly:
		return delay.VerticalOnlyPenalty(footprint).Total()
	default:
		return delay.DummyFillPenalty(footprint, addedFill).Total()
	}
}

// EvaluateMinPenalty finds the minimum penalty configuration of the
// strategy that keeps tiers stacked tiers below the temperature
// target — the Table I experiment.
func EvaluateMinPenalty(cfg Config, s Strategy, tiers int) (*Evaluation, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tiers < 1 {
		return nil, fmt.Errorf("core: bad tier count %d", tiers)
	}
	switch s {
	case Scaffolding, VerticalOnly:
		p, err := pillar.Place(pillar.Request{
			Design: cfg.Design, Tiers: tiers, Sink: cfg.Sink,
			TTargetC: cfg.TTargetC, BEOL: beolFor(s),
			NX: cfg.NX, NY: cfg.NY, MaxCoverage: cfg.MaxCoverage, Tol: cfg.Tol,
			Ctx: cfg.Ctx, Telemetry: cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		return &Evaluation{
			Strategy: s, Tiers: tiers,
			TMaxC:            p.TMaxC,
			Feasible:         p.Feasible,
			FootprintPenalty: p.FootprintPenalty,
			DelayPenalty:     delayPenaltyFor(cfg, s, p.FootprintPenalty, 0),
			MeanCoverage:     p.MeanCoverage,
		}, nil
	case Conventional3D:
		return evaluateConventionalMin(cfg, tiers)
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", s)
	}
}

// conventionalTMax solves the conventional flow at a given fill
// fraction: the design is diluted over the grown footprint, the
// dummy-via conductivity boost is applied, and the task mix is
// scheduled hot-near-sink.
func conventionalTMax(cfg Config, tiers int, fill float64, warm *[]float64) (float64, float64, error) {
	fm := dummyfill.Default()
	growth, err := fm.AreaGrowthForFill(fill)
	if err != nil {
		return 0, 0, err
	}
	scaled := cfg.Design.Tier.Scaled(1 + growth)
	pm := scaled.PowerMap(cfg.NX, cfg.NY)
	extra := fm.VerticalConductivity(0, fill)
	spec := &stack.Spec{
		DieW: scaled.Die.W, DieH: scaled.Die.H,
		Tiers: tiers, NX: cfg.NX, NY: cfg.NY,
		PowerMaps:      [][]float64{pm},
		BEOL:           beolFor(Conventional3D),
		ExtraBEOLKVert: extra,
		Sink:           cfg.Sink,
		MemoryPerTier:  true,
	}
	// Thermal-aware scheduling of a heterogeneous task mix.
	if tiers > 1 && cfg.TaskSpread > 0 {
		maps, _, err := sched.Schedule(spec, sched.SpreadTasks(tiers, cfg.TaskSpread), solver.Options{Tol: cfg.Tol, Ctx: cfg.Ctx, Telemetry: cfg.Telemetry})
		if err != nil {
			return 0, 0, err
		}
		spec.PowerMaps = maps
	}
	// The feasibility bisection re-solves this spec ~20 times with
	// nearby fill fractions: multigrid plus the warm start keeps each
	// solve at a handful of iterations.
	opts := cfg.solverOpts()
	if warm != nil && len(*warm) > 0 {
		opts.InitialGuess = *warm
	}
	res, err := spec.Solve(opts)
	if err != nil {
		return 0, 0, err
	}
	if warm != nil {
		*warm = res.Field.T
	}
	return units.KelvinToCelsius(res.MaxT()), growth, nil
}

func evaluateConventionalMin(cfg Config, tiers int) (*Evaluation, error) {
	fm := dummyfill.Default()
	var warm []float64
	mk := func(fill, growth, tMax float64, feasible bool) *Evaluation {
		return &Evaluation{
			Strategy: Conventional3D, Tiers: tiers,
			TMaxC: tMax, Feasible: feasible,
			FootprintPenalty: growth,
			DelayPenalty:     delayPenaltyFor(cfg, Conventional3D, growth, math.Max(0, fill-fm.FreeFill)),
			FillFraction:     fill,
		}
	}
	t0, g0, err := conventionalTMax(cfg, tiers, fm.FreeFill, &warm)
	if err != nil {
		return nil, err
	}
	if t0 <= cfg.TTargetC {
		return mk(fm.FreeFill, g0, t0, true), nil
	}
	tMaxFill, gMax, err := conventionalTMax(cfg, tiers, fm.MaxFill, &warm)
	if err != nil {
		return nil, err
	}
	if tMaxFill > cfg.TTargetC {
		return mk(fm.MaxFill, gMax, tMaxFill, false), nil
	}
	lo, hi := fm.FreeFill, fm.MaxFill
	best := mk(fm.MaxFill, gMax, tMaxFill, true)
	for i := 0; i < 16; i++ {
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		mid := (lo + hi) / 2
		tm, gm, err := conventionalTMax(cfg, tiers, mid, &warm)
		if err != nil {
			return nil, err
		}
		if tm <= cfg.TTargetC {
			hi = mid
			best = mk(mid, gm, tm, true)
		} else {
			lo = mid
		}
	}
	return best, nil
}

// EvaluateAtBudget evaluates a strategy with a fixed footprint-
// penalty budget and reports the resulting peak temperature — the
// fair-comparison mode of Fig. 9 ("an example design point at 2.8 %
// delay and 10 % area penalty"). Feasible indicates T ≤ target.
func EvaluateAtBudget(cfg Config, s Strategy, tiers int, areaBudget float64) (*Evaluation, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tiers < 1 {
		return nil, fmt.Errorf("core: bad tier count %d", tiers)
	}
	if areaBudget < 0 {
		return nil, fmt.Errorf("core: negative area budget %g", areaBudget)
	}
	switch s {
	case Scaffolding, VerticalOnly:
		return evaluatePillarsAtBudget(cfg, s, tiers, areaBudget)
	case Conventional3D:
		fm := dummyfill.Default()
		fill := fm.FillAtAreaGrowth(areaBudget)
		tMax, growth, err := conventionalTMax(cfg, tiers, fill, nil)
		if err != nil {
			return nil, err
		}
		return &Evaluation{
			Strategy: Conventional3D, Tiers: tiers,
			TMaxC: tMax, Feasible: tMax <= cfg.TTargetC,
			FootprintPenalty: growth,
			DelayPenalty:     delayPenaltyFor(cfg, Conventional3D, growth, math.Max(0, fill-fm.FreeFill)),
			FillFraction:     fill,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", s)
	}
}

// evaluatePillarsAtBudget spends the area budget on pillars (coverage
// allocated ∝ local power density, as the placement algorithm does)
// and reports the temperature.
func evaluatePillarsAtBudget(cfg Config, s Strategy, tiers int, areaBudget float64) (*Evaluation, error) {
	geo := pillar.Default()
	targetMetal := areaBudget / geo.KeepoutFactor
	tier := cfg.Design.Tier
	pm := tier.PowerMap(cfg.NX, cfg.NY)
	qMax := 0.0
	for _, q := range pm {
		if q > qMax {
			qMax = q
		}
	}
	if qMax <= 0 {
		return nil, errors.New("core: design has no power")
	}
	macroFrac := tier.MacroAreaFraction(cfg.NX, cfg.NY)
	beol := beolFor(s)
	halfW := meanMacroHalfWidth(cfg)

	// Find λ so the metal coverage mean matches the budget (monotone
	// — plain bisection without thermal solves).
	metalMean := func(lambda float64) (float64, *stack.PillarField) {
		eff := stack.NewPillarField(cfg.NX, cfg.NY)
		total := 0.0
		for i, q := range pm {
			m := macroFrac[i]
			fCh := math.Min(lambda*q/qMax, cfg.MaxCoverage)
			col := fCh * (1 - m)
			total += col
			lam := pillar.SpreadingLength(beol, tiers, col, geo.EffectiveK(), true)
			eta := finEta(halfW, lam)
			eff.Coverage[i] = col * ((1 - m) + m*eta)
		}
		return total / float64(len(pm)), eff
	}
	var field *stack.PillarField
	if targetMetal <= 0 {
		field = stack.NewPillarField(cfg.NX, cfg.NY)
	} else {
		lo, hi := 0.0, 1.0
		for {
			m, _ := metalMean(hi)
			if m >= targetMetal*0.999 || hi > 1e6 {
				break
			}
			hi *= 4
		}
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if m, _ := metalMean(mid); m < targetMetal {
				lo = mid
			} else {
				hi = mid
			}
		}
		_, field = metalMean(hi)
	}
	spec := &stack.Spec{
		DieW: tier.Die.W, DieH: tier.Die.H,
		Tiers: tiers, NX: cfg.NX, NY: cfg.NY,
		PowerMaps:     [][]float64{pm},
		BEOL:          beol,
		Pillars:       field,
		PillarK:       geo.EffectiveK(),
		Sink:          cfg.Sink,
		MemoryPerTier: true,
	}
	res, err := spec.Solve(cfg.solverOpts())
	if err != nil {
		return nil, err
	}
	tMax := units.KelvinToCelsius(res.MaxT())
	mean := math.Min(targetMetal, meanOf(pmNonZeroMetal(field, macroFrac, cfg)))
	return &Evaluation{
		Strategy: s, Tiers: tiers,
		TMaxC: tMax, Feasible: tMax <= cfg.TTargetC,
		FootprintPenalty: mean * geo.KeepoutFactor,
		DelayPenalty:     delayPenaltyFor(cfg, s, mean*geo.KeepoutFactor, 0),
		MeanCoverage:     mean,
	}, nil
}

// pmNonZeroMetal recovers the metal coverage distribution from an
// effective field (inverse of the access discount) for accounting.
func pmNonZeroMetal(eff *stack.PillarField, macroFrac []float64, cfg Config) []float64 {
	out := make([]float64, len(eff.Coverage))
	for i, v := range eff.Coverage {
		m := macroFrac[i]
		// The discount factor is ≤ 1; dividing recovers ≥ the metal.
		// For accounting we only need the budget-matched mean, so a
		// first-order recovery is sufficient.
		den := 1 - m
		if den < 1e-9 {
			out[i] = 0
			continue
		}
		out[i] = math.Min(v/den, cfg.MaxCoverage) * (1 - m)
	}
	return out
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func meanMacroHalfWidth(cfg Config) float64 {
	macros := cfg.Design.Tier.Macros()
	if len(macros) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range macros {
		sum += math.Min(m.Rect.W, m.Rect.H) / 2
	}
	return sum / float64(len(macros))
}

func finEta(d, lambda float64) float64 {
	if d <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	x := d / lambda
	if x < 1e-6 {
		return 1
	}
	return math.Tanh(x) / x
}

// MaxTiersAtBudget returns the largest tier count the strategy keeps
// below the temperature target within the given footprint budget,
// searching up to maxN, together with the per-N evaluations.
func MaxTiersAtBudget(cfg Config, s Strategy, areaBudget float64, maxN int) (int, []*Evaluation, error) {
	if maxN < 1 {
		return 0, nil, fmt.Errorf("core: bad maxN %d", maxN)
	}
	best := 0
	var evals []*Evaluation
	for n := 1; n <= maxN; n++ {
		if err := cfg.ctxErr(); err != nil {
			return 0, nil, err
		}
		e, err := EvaluateAtBudget(cfg, s, n, areaBudget)
		if err != nil {
			return 0, nil, err
		}
		evals = append(evals, e)
		if e.Feasible {
			best = n
		} else if n > best+2 {
			// Temperature is monotone in N; two consecutive misses
			// past the best confirm the ceiling.
			break
		}
	}
	return best, evals, nil
}

// SweepTiers evaluates the strategy at a fixed budget across tier
// counts 1..maxN — the Fig. 9 / Fig. 11 curves.
func SweepTiers(cfg Config, s Strategy, areaBudget float64, maxN int) ([]*Evaluation, error) {
	var out []*Evaluation
	for n := 1; n <= maxN; n++ {
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		e, err := EvaluateAtBudget(cfg, s, n, areaBudget)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
