package parallel

import (
	"fmt"
	"testing"
	"time"
)

// TestSmallRegionRunsInline: at or below the serial cutoff the region
// executes on the caller (worker 0) in ascending chunk order — no
// helper wakeups, and chunk-ordered reductions see the exact same
// order as the dispatched path.
func TestSmallRegionRunsInline(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	for chunks := 0; chunks <= serialCutoffChunks; chunks++ {
		var order []int
		p.Run(chunks, func(worker, c int) {
			if worker != 0 {
				t.Errorf("chunks=%d: chunk %d ran on worker %d, want inline worker 0", chunks, c, worker)
			}
			order = append(order, c) // safe: inline path is single-goroutine
		})
		for i, c := range order {
			if c != i {
				t.Errorf("chunks=%d: position %d ran chunk %d, want ascending order", chunks, i, c)
			}
		}
		if len(order) != chunks {
			t.Errorf("chunks=%d: %d chunks ran", chunks, len(order))
		}
	}
}

// TestSmallReduceBitIdentical: the scratch-free small-n ReduceSum path
// is bit-identical to both the serial single pass at 1 worker (for
// single-chunk inputs) and to a large pool's result, and no scratch is
// needed.
func TestSmallReduceBitIdentical(t *testing.T) {
	a := make([]float64, serialCutoffChunks*Grain)
	rng := uint64(7)
	for i := range a {
		rng = rng*6364136223846793005 + 1442695040888963407
		a[i] = float64(rng>>40)/float64(1<<24) - 0.5
	}
	sumRange := func(s, e int) float64 {
		v := 0.0
		for i := s; i < e; i++ {
			v += a[i] * a[i]
		}
		return v
	}
	for _, n := range []int{1, Grain, Grain + 1, 2 * Grain, serialCutoffChunks * Grain} {
		p2 := NewPool(2)
		p8 := NewPool(8)
		got2 := p2.ReduceSum(n, nil, sumRange)
		got8 := p8.ReduceSum(n, nil, sumRange)
		p2.Close()
		p8.Close()
		if got2 != got8 {
			t.Errorf("n=%d: workers=2 sum %v != workers=8 sum %v", n, got2, got8)
		}
		// Reference: explicit chunk-ordered accumulation, the
		// documented parallel reduction order.
		want := 0.0
		for c := 0; c < NumChunks(n); c++ {
			s, e := c*Grain, (c+1)*Grain
			if e > n {
				e = n
			}
			want += sumRange(s, e)
		}
		if got2 != want {
			t.Errorf("n=%d: small-n reduce %v differs from chunk-ordered reference %v", n, got2, want)
		}
	}
}

// TestSmallNParallelOverheadRegression pins the workers=2 small-n
// regression fix: below the dispatch cutoff a multi-worker pool must
// cost no more than ~1.1× the serial pool on the same kernel, because
// both run the identical inline loop. Uses min-of-5 timings to shed
// scheduler noise.
func TestSmallNParallelOverheadRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	const n = 2 * Grain // 2 chunks: under the cutoff, over the single-chunk trivial case
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%17) * 0.25
	}
	kernel := func(s, e int) float64 {
		v := 0.0
		for i := s; i < e; i++ {
			v += a[i] * a[i]
		}
		return v
	}
	timePool := func(workers int) time.Duration {
		p := NewPool(workers)
		defer p.Close()
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = p.ReduceSum(n, nil, kernel)
				}
			})
			if d := time.Duration(r.NsPerOp()); d < best {
				best = d
			}
		}
		return best
	}
	serial := timePool(1)
	par := timePool(2)
	if float64(par) > 1.1*float64(serial) {
		t.Errorf("workers=2 small-n ReduceSum %v exceeds 1.1× serial %v", par, serial)
	}
}

// BenchmarkSmallNReduce tracks the small-n dispatch overhead directly:
// with the inline cutoff the two variants should be indistinguishable.
func BenchmarkSmallNReduce(b *testing.B) {
	const n = 2 * Grain
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%17) * 0.25
	}
	kernel := func(s, e int) float64 {
		v := 0.0
		for i := s; i < e; i++ {
			v += a[i] * a[i]
		}
		return v
	}
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			for i := 0; i < b.N; i++ {
				_ = p.ReduceSum(n, nil, kernel)
			}
		})
	}
}
