package parallel

import (
	"sync"
	"testing"
)

// TestOwnedRange: the static blocks tile [0, n) exactly, differ in
// length by at most one, and excess workers get empty blocks.
func TestOwnedRange(t *testing.T) {
	for _, c := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {137, 8}, {1000, 7}, {6, 1},
	} {
		covered := make([]int, c.n)
		minLen, maxLen := c.n+1, -1
		for w := 0; w < c.k+2; w++ {
			s, e := ownedRange(c.n, c.k, w)
			if w >= c.k {
				if s != e {
					t.Errorf("n=%d k=%d: worker %d ≥ k got non-empty [%d,%d)", c.n, c.k, w, s, e)
				}
				continue
			}
			if l := e - s; l < minLen {
				minLen = l
			}
			if l := e - s; l > maxLen {
				maxLen = l
			}
			for i := s; i < e; i++ {
				covered[i]++
			}
		}
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("n=%d k=%d: chunk %d owned %d times", c.n, c.k, i, n)
			}
		}
		if c.n >= c.k && maxLen-minLen > 1 {
			t.Errorf("n=%d k=%d: block lengths range [%d,%d], want spread ≤ 1", c.n, c.k, minLen, maxLen)
		}
	}
}

// TestAffineStableOwnership: on an affine pool the chunk→worker
// assignment is identical on every Run with the same chunk count, and
// matches the pure ownedRange function — no per-call reshuffling.
func TestAffineStableOwnership(t *testing.T) {
	const workers, chunks = 4, 67 // > serialCutoffChunks so Run dispatches
	p := NewAffinePool(workers)
	defer p.Close()
	if !p.Affine() {
		t.Fatal("NewAffinePool not affine")
	}
	var mu sync.Mutex
	record := func() []int {
		owner := make([]int, chunks)
		p.Run(chunks, func(worker, c int) {
			mu.Lock()
			owner[c] = worker
			mu.Unlock()
		})
		return owner
	}
	first := record()
	for w := 0; w < workers; w++ {
		s, e := ownedRange(chunks, workers, w)
		for c := s; c < e; c++ {
			if first[c] != w {
				t.Fatalf("chunk %d ran on worker %d, ownedRange says %d", c, first[c], w)
			}
		}
	}
	for rep := 0; rep < 20; rep++ {
		got := record()
		for c := range got {
			if got[c] != first[c] {
				t.Fatalf("rep %d: chunk %d moved from worker %d to %d", rep, c, first[c], got[c])
			}
		}
	}
}

// TestAffineDynamicBitIdentical: static ownership changes which worker
// runs a chunk, never what the chunk computes — ReduceSum and For are
// bitwise identical between affine and dynamic pools, and across
// repeated calls on the same affine pool.
func TestAffineDynamicBitIdentical(t *testing.T) {
	const n = 9*Grain + 311
	a := make([]float64, n)
	rng := uint64(7)
	for i := range a {
		rng = rng*6364136223846793005 + 1442695040888963407
		a[i] = float64(rng>>40)/float64(1<<24) - 0.5
	}
	sumRange := func(s, e int) float64 {
		v := 0.0
		for i := s; i < e; i++ {
			v += a[i] * a[i]
		}
		return v
	}
	dyn := NewPool(4)
	defer dyn.Close()
	want := dyn.ReduceSum(n, nil, sumRange)
	for _, w := range []int{2, 4, 8} {
		p := NewAffinePool(w)
		for rep := 0; rep < 3; rep++ {
			if got := p.ReduceSum(n, nil, sumRange); got != want {
				t.Errorf("affine workers=%d rep=%d: sum %v != dynamic %v", w, rep, got, want)
			}
		}
		p.Close()
	}
}

// TestArenaPerWorkerScratch: concurrent workers each write their own
// arena buffer with no synchronization — under -race this fails if
// buffers are ever shared — and reused buffers keep their identity
// (no realloc when capacity suffices).
func TestArenaPerWorkerScratch(t *testing.T) {
	const workers = 4
	p := NewAffinePool(workers)
	defer p.Close()
	ar := NewArena(workers)
	if ar.Workers() != workers {
		t.Fatalf("arena workers = %d, want %d", ar.Workers(), workers)
	}
	const chunks = 64
	for rep := 0; rep < 10; rep++ {
		p.Run(chunks, func(worker, c int) {
			buf := ar.Get(worker, 512)
			for i := range buf {
				buf[i] = float64(worker*chunks + c)
			}
		})
	}
	// Distinct workers must have received distinct backing arrays.
	seen := map[*float64]int{}
	for w := 0; w < workers; w++ {
		b := ar.Get(w, 512)
		if prev, dup := seen[&b[0]]; dup {
			t.Fatalf("workers %d and %d share a scratch buffer", prev, w)
		}
		seen[&b[0]] = w
	}
	// A shorter request reuses the grown buffer in place.
	b1 := ar.Get(0, 512)
	b2 := ar.Get(0, 100)
	if &b1[0] != &b2[0] {
		t.Error("shrinking Get reallocated instead of reslicing")
	}
	// NewArena clamps degenerate worker counts.
	if NewArena(0).Workers() != 1 {
		t.Error("NewArena(0) should clamp to 1 slot")
	}
}

// TestPoolsCreatedCounter: the process-wide constructor counter
// advances by exactly the number of pools built — the hook transient
// no-regression guards rely on.
func TestPoolsCreatedCounter(t *testing.T) {
	before := PoolsCreated()
	p1 := NewPool(2)
	p2 := NewAffinePool(3)
	p1.Close()
	p2.Close()
	if d := PoolsCreated() - before; d < 2 {
		t.Errorf("PoolsCreated advanced by %d, want ≥ 2", d)
	}
}
