package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {Grain, 1}, {Grain + 1, 2},
		{3*Grain - 1, 3}, {3 * Grain, 3},
	}
	for _, c := range cases {
		if got := NumChunks(c.n); got != c.want {
			t.Errorf("NumChunks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
	s := NewPool(1)
	defer s.Close()
	if !s.Serial() || s.Workers() != 1 {
		t.Error("1-worker pool should be serial")
	}
	neg := NewPool(-3)
	defer neg.Close()
	if neg.Workers() < 1 {
		t.Error("negative worker count not defaulted")
	}
}

// TestRunCoversEveryChunkOnce: each chunk index executes exactly once
// regardless of worker count.
func TestRunCoversEveryChunkOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		p := NewPool(w)
		const chunks = 137
		counts := make([]int64, chunks)
		p.Run(chunks, func(worker, c int) {
			if worker < 0 || worker >= p.Workers() {
				t.Errorf("worker id %d out of range [0,%d)", worker, p.Workers())
			}
			atomic.AddInt64(&counts[c], 1)
		})
		for c, n := range counts {
			if n != 1 {
				t.Errorf("workers=%d: chunk %d ran %d times", w, c, n)
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestForCoversRange: the fixed-grain chunking tiles [0, n) exactly.
func TestForCoversRange(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		for _, n := range []int{0, 1, Grain - 1, Grain, Grain + 1, 5*Grain + 17} {
			hit := make([]int32, n)
			p.For(n, func(s, e int) {
				if e-s > Grain && w > 1 {
					t.Errorf("chunk [%d,%d) exceeds grain", s, e)
				}
				for i := s; i < e; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestForGrain(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const n, grain = 1000, 7
	var visited int64
	p.ForGrain(n, grain, func(worker, s, e int) {
		if worker < 0 || worker >= 3 {
			t.Errorf("bad worker id %d", worker)
		}
		atomic.AddInt64(&visited, int64(e-s))
	})
	if visited != n {
		t.Errorf("visited %d of %d", visited, n)
	}
	// Degenerate grain defaults to 1.
	var once int64
	p.ForGrain(3, 0, func(_, s, e int) { atomic.AddInt64(&once, int64(e-s)) })
	if once != 3 {
		t.Errorf("grain 0: visited %d of 3", once)
	}
}

// TestReduceSumDeterministic: the chunked reduction is bit-identical
// across repeated runs and across worker counts ≥ 2, and within
// rounding of the serial single-pass sum.
func TestReduceSumDeterministic(t *testing.T) {
	const n = 10*Grain + 321
	a := make([]float64, n)
	rng := uint64(42)
	for i := range a {
		rng = rng*6364136223846793005 + 1442695040888963407
		a[i] = float64(rng>>40)/float64(1<<24) - 0.5
	}
	sumRange := func(s, e int) float64 {
		v := 0.0
		for i := s; i < e; i++ {
			v += a[i] * a[i]
		}
		return v
	}
	serialPool := NewPool(1)
	defer serialPool.Close()
	serial := serialPool.ReduceSum(n, nil, sumRange)

	var ref float64
	for run, w := range []int{2, 2, 3, 5, 8, 16} {
		p := NewPool(w)
		got := p.ReduceSum(n, make([]float64, NumChunks(n)), sumRange)
		p.Close()
		if run == 0 {
			ref = got
		} else if got != ref {
			t.Errorf("workers=%d: sum %v differs bitwise from reference %v", w, got, ref)
		}
		if rel := math.Abs(got-serial) / math.Abs(serial); rel > 1e-13 {
			t.Errorf("workers=%d: chunked sum %v vs serial %v (rel %g)", w, got, serial, rel)
		}
	}
	// Small scratch is replaced, not overflowed.
	p := NewPool(2)
	defer p.Close()
	if got := p.ReduceSum(n, make([]float64, 1), sumRange); got != ref {
		t.Error("short scratch changed the result")
	}
	if got := p.ReduceSum(0, nil, sumRange); got != 0 {
		t.Errorf("empty reduction = %v", got)
	}
}

// TestConcurrentUse: one pool serving parallel regions from several
// goroutines at once stays correct (the solver shares a pool across
// kernel invocations, and tests run solvers concurrently).
func TestConcurrentUse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				var sum int64
				p.Run(23, func(_, c int) { atomic.AddInt64(&sum, int64(c)) })
				if sum != 23*22/2 {
					t.Errorf("region sum %d", sum)
				}
			}
		}()
	}
	wg.Wait()
}
