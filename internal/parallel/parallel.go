// Package parallel provides the reusable worker pool and the
// deterministic data-parallel primitives behind the solver hot paths
// (chunked SpMV, PCG reductions, red-black SOR sweeps, per-column
// preconditioner fan-out). Stdlib only.
//
// Determinism contract: chunk boundaries depend only on the problem
// size — never on the worker count or on scheduling — and reductions
// combine per-chunk partial results sequentially in chunk order.
// Consequently every primitive in this package returns bit-identical
// results run-to-run at a fixed worker count, and identical results
// across any worker count ≥ 2. A pool with 1 worker short-circuits to
// plain serial loops (single full-range pass for reductions), which
// is the solver's exact legacy path; it differs from the chunked
// parallel reduction only by floating-point summation order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain is the fixed chunk length (elements per chunk) used by For
// and ReduceSum. It is a compile-time constant so that chunk
// boundaries — and therefore reduction order — are a pure function of
// the problem size. 1024 float64 elements (8 KiB) amortizes the
// per-chunk atomic fetch while staying well under L1 size, and keeps
// realistic solver grids (≥ tens of thousands of cells) spread across
// many more chunks than workers for load balance.
const Grain = 1024

// NumChunks returns the number of fixed-Grain chunks covering n
// elements.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + Grain - 1) / Grain
}

// serialCutoffChunks is the dispatch threshold: regions with at most
// this many chunks run inline on the caller instead of waking helper
// goroutines. Sub-grain and few-chunk kernels (coarse multigrid
// levels, small test grids) spend more on channel sends and wakeups
// than on the work itself — the workers=2 small-n regression. The
// inline path executes chunks in ascending order, so chunk-ordered
// reductions are bit-identical to the dispatched path.
const serialCutoffChunks = 4

// region is one parallel-for dispatched to the pool: workers
// repeatedly claim the next unclaimed chunk until none remain.
type region struct {
	fn   func(worker, chunk int)
	next atomic.Int64
	num  int64
	wg   sync.WaitGroup // helpers still inside this region
}

func (r *region) run(worker int) {
	for {
		c := r.next.Add(1) - 1
		if c >= r.num {
			return
		}
		r.fn(worker, int(c))
	}
}

// Pool is a reusable fixed-size worker pool: W−1 persistent helper
// goroutines plus the calling goroutine execute each parallel region.
// A pool with ≤ 1 worker runs everything inline on the caller with no
// goroutines and no synchronization. Pools are safe for concurrent
// use; Close releases the helpers (using a closed pool panics).
//
// Run/For/ForGrain/ReduceSum must not be re-entered from inside a
// region callback of the same pool — helpers would be claimed twice
// and the nested call could deadlock waiting for them.
type Pool struct {
	workers int
	regions chan *region
	close   sync.Once
}

// NewPool creates a pool with the given worker count; workers ≤ 0
// defaults to runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// Buffered so region dispatch never blocks on a helper
		// being ready to receive: the caller queues the handoffs
		// and immediately starts claiming chunks itself.
		p.regions = make(chan *region, workers-1)
		for id := 1; id < workers; id++ {
			go p.helper(id)
		}
	}
	return p
}

// Workers returns the pool's worker count (≥ 1).
func (p *Pool) Workers() int { return p.workers }

// Serial reports whether the pool executes regions inline on the
// calling goroutine (worker count 1).
func (p *Pool) Serial() bool { return p.workers <= 1 }

// Close shuts the helper goroutines down. Idempotent; the pool must
// not be used afterwards.
func (p *Pool) Close() {
	p.close.Do(func() {
		if p.regions != nil {
			close(p.regions)
		}
	})
}

func (p *Pool) helper(id int) {
	for r := range p.regions {
		r.run(id)
		r.wg.Done()
	}
}

// Run executes fn(worker, chunk) for every chunk in [0, numChunks),
// each exactly once, and returns when all have completed. worker is
// in [0, Workers()) and identifies the executing goroutine (0 is the
// caller) — use it to index per-worker scratch. Chunk-to-worker
// assignment is dynamic (work stealing off an atomic counter), so fn
// must not depend on which worker runs a chunk, only on the chunk
// index.
func (p *Pool) Run(numChunks int, fn func(worker, chunk int)) {
	if p.workers <= 1 || numChunks <= serialCutoffChunks {
		for c := 0; c < numChunks; c++ {
			fn(0, c)
		}
		return
	}
	r := &region{fn: fn, num: int64(numChunks)}
	helpers := p.workers - 1
	if helpers > numChunks-1 {
		helpers = numChunks - 1
	}
	r.wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		p.regions <- r
	}
	r.run(0)
	r.wg.Wait()
}

// For runs fn over [0, n) split into fixed Grain-sized chunks:
// fn(start, end) with end−start ≤ Grain. Writes to disjoint index
// ranges are race-free; elementwise kernels produce bit-identical
// results at any worker count.
func (p *Pool) For(n int, fn func(start, end int)) {
	if p.workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.Run(NumChunks(n), func(_, c int) {
		s := c * Grain
		e := s + Grain
		if e > n {
			e = n
		}
		fn(s, e)
	})
}

// ForGrain runs fn(worker, start, end) over [0, n) in chunks of the
// given grain (≥ 1). Used where the natural unit is not a float64
// element — e.g. one grid column per index.
func (p *Pool) ForGrain(n, grain int, fn func(worker, start, end int)) {
	if grain < 1 {
		grain = 1
	}
	if p.workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunks := (n + grain - 1) / grain
	p.Run(chunks, func(worker, c int) {
		s := c * grain
		e := s + grain
		if e > n {
			e = n
		}
		fn(worker, s, e)
	})
}

// ReduceSum computes Σ fn(start, end) over fixed Grain-sized chunks
// of [0, n), combining the per-chunk partial sums sequentially in
// chunk order — deterministic at any worker count ≥ 2. With 1 worker
// it performs a single full-range fn(0, n) call (the exact serial
// summation order). scratch, when non-nil, must have at least
// NumChunks(n) capacity and avoids a per-call allocation.
func (p *Pool) ReduceSum(n int, scratch []float64, fn func(start, end int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if p.workers <= 1 {
		return fn(0, n)
	}
	nc := NumChunks(n)
	if nc <= serialCutoffChunks {
		// Inline, no scratch: accumulate the per-chunk partials
		// in ascending chunk order — the same order the
		// dispatched path sums its partial array, so the result
		// is bit-identical.
		sum := 0.0
		for c := 0; c < nc; c++ {
			s := c * Grain
			e := s + Grain
			if e > n {
				e = n
			}
			sum += fn(s, e)
		}
		return sum
	}
	if cap(scratch) < nc {
		scratch = make([]float64, nc)
	}
	partial := scratch[:nc]
	p.Run(nc, func(_, c int) {
		s := c * Grain
		e := s + Grain
		if e > n {
			e = n
		}
		partial[c] = fn(s, e)
	})
	sum := 0.0
	for _, v := range partial {
		sum += v
	}
	return sum
}
