// Package parallel provides the reusable worker pool and the
// deterministic data-parallel primitives behind the solver hot paths
// (chunked SpMV, PCG reductions, red-black SOR sweeps, per-column
// preconditioner fan-out). Stdlib only.
//
// Determinism contract: chunk boundaries depend only on the problem
// size — never on the worker count or on scheduling — and reductions
// combine per-chunk partial results sequentially in chunk order.
// Consequently every primitive in this package returns bit-identical
// results run-to-run at a fixed worker count, and identical results
// across any worker count ≥ 2. A pool with 1 worker short-circuits to
// plain serial loops (single full-range pass for reductions), which
// is the solver's exact legacy path; it differs from the chunked
// parallel reduction only by floating-point summation order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain is the fixed chunk length (elements per chunk) used by For
// and ReduceSum. It is a compile-time constant so that chunk
// boundaries — and therefore reduction order — are a pure function of
// the problem size. 1024 float64 elements (8 KiB) amortizes the
// per-chunk atomic fetch while staying well under L1 size, and keeps
// realistic solver grids (≥ tens of thousands of cells) spread across
// many more chunks than workers for load balance.
const Grain = 1024

// NumChunks returns the number of fixed-Grain chunks covering n
// elements.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + Grain - 1) / Grain
}

// serialCutoffChunks is the dispatch threshold: regions with at most
// this many chunks run inline on the caller instead of waking helper
// goroutines. Sub-grain and few-chunk kernels (coarse multigrid
// levels, small test grids) spend more on channel sends and wakeups
// than on the work itself — the workers=2 small-n regression. The
// inline path executes chunks in ascending order, so chunk-ordered
// reductions are bit-identical to the dispatched path.
const serialCutoffChunks = 4

// region is one parallel-for dispatched to the pool. Dynamic regions
// have workers repeatedly claim the next unclaimed chunk off an
// atomic counter; static (affine) regions give each worker a fixed
// contiguous chunk block computed from its worker id alone.
type region struct {
	fn   func(worker, chunk int)
	next atomic.Int64
	num  int64
	// owners > 0 marks a static region: worker w executes exactly the
	// chunks of ownedRange(num, owners, w), so the chunk→worker map is
	// a pure function of (numChunks, owners) — identical on every
	// call. owners == 0 selects dynamic claiming.
	owners int
	wg     sync.WaitGroup // helpers still inside this region
}

func (r *region) run(worker int) {
	if r.owners > 0 {
		s, e := ownedRange(int(r.num), r.owners, worker)
		for c := s; c < e; c++ {
			r.fn(worker, c)
		}
		return
	}
	for {
		c := r.next.Add(1) - 1
		if c >= r.num {
			return
		}
		r.fn(worker, int(c))
	}
}

// Partition returns part idx of n items split into parts contiguous
// blocks — the same static tiling affine pools use for chunk
// ownership. Exposed for callers that band work themselves (e.g. the
// solver's tiled multigrid sweeps) and need the partition to be a
// pure function of (n, parts, idx).
func Partition(n, parts, idx int) (start, end int) {
	return ownedRange(n, parts, idx)
}

// ownedRange returns worker w's fixed contiguous chunk block when n
// chunks are split among k owners: blocks differ in length by at most
// one and depend only on (n, k, w) — never on scheduling.
func ownedRange(n, k, w int) (start, end int) {
	if w >= k {
		return 0, 0
	}
	per, extra := n/k, n%k
	start = w*per + min(w, extra)
	end = start + per
	if w < extra {
		end++
	}
	return start, end
}

// Pool is a reusable fixed-size worker pool: W−1 persistent helper
// goroutines plus the calling goroutine execute each parallel region.
// A pool with ≤ 1 worker runs everything inline on the caller with no
// goroutines and no synchronization. Pools are safe for concurrent
// use; Close releases the helpers (using a closed pool panics).
//
// Run/For/ForGrain/ReduceSum must not be re-entered from inside a
// region callback of the same pool — helpers would be claimed twice
// and the nested call could deadlock waiting for them.
type Pool struct {
	workers int
	affine  bool
	// chans[i] feeds helper goroutine id i+1. One channel per helper
	// (rather than one shared queue) pins the helper-id↔goroutine
	// binding: affine regions depend on worker w's block running on
	// the same goroutine every call, which a shared queue cannot
	// guarantee — one helper could drain two handoffs of the same
	// region while another never wakes.
	chans []chan *region
	close sync.Once
}

// NewPool creates a pool with the given worker count; workers ≤ 0
// defaults to runtime.GOMAXPROCS(0). Chunk→worker assignment is
// dynamic (work stealing): best when per-chunk cost varies.
func NewPool(workers int) *Pool {
	return newPool(workers, false)
}

// NewAffinePool creates a pool with static chunk ownership: every Run
// gives worker w the same fixed contiguous chunk block for a given
// chunk count, instead of racing an atomic claim counter. Repeated
// sweeps over the same arrays (iterative solvers) then touch the same
// memory from the same goroutine every iteration — the OS keeps those
// pages on the worker's NUMA node (first-touch) and its private cache
// lines stay valid across calls, where dynamic claiming reshuffles
// ownership every sweep. Results are identical either way (chunks
// compute the same values regardless of which worker runs them);
// only placement changes. Prefer this for uniform-cost kernels.
func NewAffinePool(workers int) *Pool {
	return newPool(workers, true)
}

func newPool(workers int, affine bool) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolsCreated.Add(1)
	p := &Pool{workers: workers, affine: affine}
	if workers > 1 {
		// Buffered so region dispatch rarely blocks on a helper
		// being ready to receive: the caller queues the handoffs
		// and immediately starts executing chunks itself.
		p.chans = make([]chan *region, workers-1)
		for id := 1; id < workers; id++ {
			p.chans[id-1] = make(chan *region, 4)
			go p.helper(id)
		}
	}
	return p
}

// Affine reports whether the pool uses static chunk ownership.
func (p *Pool) Affine() bool { return p.affine }

// Workers returns the pool's worker count (≥ 1).
func (p *Pool) Workers() int { return p.workers }

// Serial reports whether the pool executes regions inline on the
// calling goroutine (worker count 1).
func (p *Pool) Serial() bool { return p.workers <= 1 }

// Close shuts the helper goroutines down. Idempotent; the pool must
// not be used afterwards.
func (p *Pool) Close() {
	p.close.Do(func() {
		for _, ch := range p.chans {
			close(ch)
		}
	})
}

func (p *Pool) helper(id int) {
	for r := range p.chans[id-1] {
		r.run(id)
		r.wg.Done()
	}
}

// Run executes fn(worker, chunk) for every chunk in [0, numChunks),
// each exactly once, and returns when all have completed. worker is
// in [0, Workers()) and identifies the executing goroutine (0 is the
// caller) — use it to index per-worker scratch. Chunk-to-worker
// assignment is dynamic (work stealing off an atomic counter), so fn
// must not depend on which worker runs a chunk, only on the chunk
// index.
func (p *Pool) Run(numChunks int, fn func(worker, chunk int)) {
	if p.workers <= 1 || numChunks <= serialCutoffChunks {
		for c := 0; c < numChunks; c++ {
			fn(0, c)
		}
		return
	}
	r := &region{fn: fn, num: int64(numChunks)}
	helpers := p.workers - 1
	if p.affine {
		// Static ownership: every helper's fixed block must run even
		// when some blocks are empty, so all W−1 helpers are
		// dispatched (no capping at numChunks−1 — the chunk→worker
		// map may not depend on which helpers happened to wake).
		r.owners = p.workers
	} else if helpers > numChunks-1 {
		helpers = numChunks - 1
	}
	r.wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		p.chans[h] <- r
	}
	r.run(0)
	r.wg.Wait()
}

// poolsCreated counts Pool constructions process-wide. Regression
// guards use it to assert that hot paths (e.g. transient stepping)
// reuse a pinned pool instead of constructing one per call.
var poolsCreated atomic.Int64

// PoolsCreated returns the number of pools constructed so far in this
// process. Intended for tests: snapshot before, run the path under
// guard, assert the delta.
func PoolsCreated() int64 { return poolsCreated.Load() }

// For runs fn over [0, n) split into fixed Grain-sized chunks:
// fn(start, end) with end−start ≤ Grain. Writes to disjoint index
// ranges are race-free; elementwise kernels produce bit-identical
// results at any worker count.
func (p *Pool) For(n int, fn func(start, end int)) {
	if p.workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.Run(NumChunks(n), func(_, c int) {
		s := c * Grain
		e := s + Grain
		if e > n {
			e = n
		}
		fn(s, e)
	})
}

// ForGrain runs fn(worker, start, end) over [0, n) in chunks of the
// given grain (≥ 1). Used where the natural unit is not a float64
// element — e.g. one grid column per index.
func (p *Pool) ForGrain(n, grain int, fn func(worker, start, end int)) {
	if grain < 1 {
		grain = 1
	}
	if p.workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunks := (n + grain - 1) / grain
	p.Run(chunks, func(worker, c int) {
		s := c * grain
		e := s + grain
		if e > n {
			e = n
		}
		fn(worker, s, e)
	})
}

// ReduceSum computes Σ fn(start, end) over fixed Grain-sized chunks
// of [0, n), combining the per-chunk partial sums sequentially in
// chunk order — deterministic at any worker count ≥ 2. With 1 worker
// it performs a single full-range fn(0, n) call (the exact serial
// summation order). scratch, when non-nil, must have at least
// NumChunks(n) capacity and avoids a per-call allocation.
func (p *Pool) ReduceSum(n int, scratch []float64, fn func(start, end int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if p.workers <= 1 {
		return fn(0, n)
	}
	nc := NumChunks(n)
	if nc <= serialCutoffChunks {
		// Inline, no scratch: accumulate the per-chunk partials
		// in ascending chunk order — the same order the
		// dispatched path sums its partial array, so the result
		// is bit-identical.
		sum := 0.0
		for c := 0; c < nc; c++ {
			s := c * Grain
			e := s + Grain
			if e > n {
				e = n
			}
			sum += fn(s, e)
		}
		return sum
	}
	if cap(scratch) < nc {
		scratch = make([]float64, nc)
	}
	partial := scratch[:nc]
	p.Run(nc, func(_, c int) {
		s := c * Grain
		e := s + Grain
		if e > n {
			e = n
		}
		partial[c] = fn(s, e)
	})
	sum := 0.0
	for _, v := range partial {
		sum += v
	}
	return sum
}
