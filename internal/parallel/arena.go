package parallel

// Arena is a set of per-worker float64 scratch buffers with lazy,
// first-touch allocation: worker w's buffer is allocated by worker w
// itself on its first Get, inside the parallel region, so the OS backs
// the pages from memory local to the thread that will keep reusing
// them (first-touch NUMA placement). Buffers only ever grow; repeated
// solves at a fixed problem size allocate exactly once per worker.
//
// Concurrency contract: distinct workers may call Get concurrently
// with distinct worker indices; a single worker index must not be used
// from two goroutines at once. That is exactly the discipline the
// Pool's worker argument already enforces, so Get(worker, n) inside a
// Run/ForGrain callback is race-free with no synchronization.
type Arena struct {
	bufs [][]float64
}

// NewArena creates an arena for the given worker count. No memory is
// allocated until workers first Get.
func NewArena(workers int) *Arena {
	if workers < 1 {
		workers = 1
	}
	return &Arena{bufs: make([][]float64, workers)}
}

// Workers returns the number of per-worker slots.
func (a *Arena) Workers() int { return len(a.bufs) }

// Get returns worker's scratch of length n, zeroed only when newly
// grown — callers must not assume the contents of a reused buffer.
func (a *Arena) Get(worker, n int) []float64 {
	b := a.bufs[worker]
	if cap(b) < n {
		b = make([]float64, n)
		a.bufs[worker] = b
	}
	return b[:n]
}
