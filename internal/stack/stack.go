// Package stack assembles full 3D-IC thermal problems: N stacked
// tiers of (device silicon + lower BEOL + upper BEOL) over a handle
// wafer, cooled from below by a heatsink — the geometry of the
// paper's Fig. 1. The output is a solver.Problem ready for the
// finite-volume solver, with per-tier power maps painted into the
// device layers, pillar coverage painted into the BEOL layers, and
// dummy-fill conductivity boosts applied uniformly.
package stack

import (
	"errors"
	"fmt"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/materials"
	"thermalscaffold/internal/mesh"
	"thermalscaffold/internal/pdk"
	"thermalscaffold/internal/solver"
)

// BEOLProps carries the homogenized conductivities of the two BEOL
// layer groups (from internal/beol or the paper's Fig. 7a).
type BEOLProps struct {
	LowerKVert, LowerKLat float64 // V0–M7
	UpperKVert, UpperKLat float64 // M8/V8/M9
}

// ConventionalBEOL returns this repository's numerically homogenized
// conventional (ultra-low-k everywhere) BEOL. Values were produced by
// beol.LowerGroupSpec / beol.UpperGroupSpec at the default 640 nm /
// 8 nm slice resolution and are frozen here so stack construction
// does not re-run the homogenization solves. Paper Fig. 7a:
// 0.31/5.47 and 6.9/13.6.
func ConventionalBEOL() BEOLProps {
	return BEOLProps{LowerKVert: 0.397, LowerKLat: 5.59, UpperKVert: 13.3, UpperKLat: 16.4}
}

// ScaffoldedBEOL returns the homogenized BEOL with the thermal
// dielectric in M8/V8/M9 (conservative through-plane film). Paper
// Fig. 7a: 93.59/101.73 for the upper group.
func ScaffoldedBEOL() BEOLProps {
	return BEOLProps{LowerKVert: 0.397, LowerKLat: 5.59, UpperKVert: 48.8, UpperKLat: 120}
}

// PaperBEOL returns the paper's published Fig. 7a values.
func PaperBEOL(scaffolded bool) BEOLProps {
	if scaffolded {
		return BEOLProps{LowerKVert: 0.31, LowerKLat: 5.47, UpperKVert: 93.59, UpperKLat: 101.73}
	}
	return BEOLProps{LowerKVert: 0.31, LowerKLat: 5.47, UpperKVert: 6.9, UpperKLat: 13.6}
}

// Label returns a short tag for the BEOL variant, keyed on whether
// the upper layers carry the thermal dielectric.
func (b BEOLProps) Label() string {
	if b.UpperKLat >= 50 {
		return "thermal-dielectric"
	}
	return "ultra-low-k"
}

// Validate checks positivity.
func (b BEOLProps) Validate() error {
	for _, v := range []float64{b.LowerKVert, b.LowerKLat, b.UpperKVert, b.UpperKLat} {
		if v <= 0 {
			return fmt.Errorf("stack: non-positive BEOL conductivity in %+v", b)
		}
	}
	return nil
}

// PillarField is a per-cell pillar coverage fraction over the die's
// NX×NY in-plane grid (row-major, x fastest). Coverage boosts the
// vertical (and, weakly, lateral) conductivity of every BEOL cell in
// that column, on every tier — pillars are vertically aligned
// structures integrated with the power delivery network.
type PillarField struct {
	NX, NY   int
	Coverage []float64 // fraction ∈ [0,1] per cell
}

// NewPillarField allocates a zero-coverage field.
func NewPillarField(nx, ny int) *PillarField {
	return &PillarField{NX: nx, NY: ny, Coverage: make([]float64, nx*ny)}
}

// Mean returns the area-mean coverage.
func (p *PillarField) Mean() float64 {
	if len(p.Coverage) == 0 {
		return 0
	}
	s := 0.0
	for _, c := range p.Coverage {
		s += c
	}
	return s / float64(len(p.Coverage))
}

// Validate checks bounds.
func (p *PillarField) Validate() error {
	if len(p.Coverage) != p.NX*p.NY {
		return fmt.Errorf("stack: pillar field has %d cells, want %d", len(p.Coverage), p.NX*p.NY)
	}
	for i, c := range p.Coverage {
		if c < 0 || c > 1 {
			return fmt.Errorf("stack: pillar coverage %g at cell %d outside [0,1]", c, i)
		}
	}
	return nil
}

// Spec fully describes a 3D-IC thermal simulation.
type Spec struct {
	DieW, DieH float64 // m
	Tiers      int
	NX, NY     int
	// PowerMaps holds one W/m² map (NX·NY, row-major) per tier,
	// bottom tier first. A single entry is replicated to all tiers.
	PowerMaps [][]float64
	BEOL      BEOLProps
	// Pillars, when non-nil, is the scaffolding pillar field applied
	// to every tier (pillars are vertically aligned columns).
	Pillars *PillarField
	// PillarsPerTier, when non-nil, gives each tier its own pillar
	// field (len Tiers) — used for the pillar-misalignment study
	// (Observation 4c). Takes precedence over Pillars.
	PillarsPerTier []*PillarField
	// PillarK is the effective vertical conductivity of pillar metal
	// (W/m/K); default 105 (Sec. III-A, 100 nm × 100 nm footprint).
	PillarK float64
	// ExtraBEOLKVert adds uniform vertical conductivity to both BEOL
	// groups — the thermal dummy-via boost of the conventional flow.
	ExtraBEOLKVert float64
	Sink           heatsink.Model
	// CellsPerGroup controls z resolution per physical layer (default 1).
	CellsPerGroup int
	// HandleCells subdivides the handle wafer (default 2).
	HandleCells int
	// InterTierTBR, when positive, inserts a thermal boundary
	// resistance (m²K/W) at every tier-to-tier interface — the
	// bonding/regrowth interface of monolithic integration. [34] puts
	// CMOS interface conductance near 10⁹ W/m²/K (TBR ≈ 1e-9),
	// which the paper treats as negligible.
	InterTierTBR float64
	// MemoryPerTier adds the interleaved memory sub-layer each tier of
	// the studied designs carries (Fig. 1: "silicon memory, memory
	// access devices, and additional BEOL are also present on each
	// tier"): one more device-silicon layer plus a full BEOL stack,
	// roughly doubling the per-tier vertical resistance. Memory power
	// is part of the tier power map (painted into the logic device
	// layer), so the sub-layer itself is passive.
	MemoryPerTier bool
}

// Layout records where each physical layer landed in the grid.
type Layout struct {
	Grid *mesh.Grid
	// DeviceLayers[t] lists the z cell-layer indices of tier t's
	// device silicon.
	DeviceLayers [][]int
	// TierOfLayer maps each z layer to its tier (−1 for handle).
	TierOfLayer []int
}

// PillarKDefault is the COMSOL-derived effective pillar conductivity
// of the paper (Fig. 7): 105 W/m/K at 100 nm × 100 nm footprint.
const PillarKDefault = 105.0

// Build assembles the solver problem.
func (s *Spec) Build() (*solver.Problem, *Layout, error) {
	if s.DieW <= 0 || s.DieH <= 0 {
		return nil, nil, errors.New("stack: non-positive die dimensions")
	}
	if s.Tiers < 1 {
		return nil, nil, fmt.Errorf("stack: need at least 1 tier, got %d", s.Tiers)
	}
	if s.NX < 1 || s.NY < 1 {
		return nil, nil, fmt.Errorf("stack: bad in-plane resolution %dx%d", s.NX, s.NY)
	}
	if err := s.BEOL.Validate(); err != nil {
		return nil, nil, err
	}
	if err := s.Sink.Validate(); err != nil {
		return nil, nil, err
	}
	switch len(s.PowerMaps) {
	case 1, s.Tiers:
	default:
		return nil, nil, fmt.Errorf("stack: %d power maps for %d tiers", len(s.PowerMaps), s.Tiers)
	}
	for t, pm := range s.PowerMaps {
		if len(pm) != s.NX*s.NY {
			return nil, nil, fmt.Errorf("stack: power map %d has %d cells, want %d", t, len(pm), s.NX*s.NY)
		}
	}
	if s.Pillars != nil {
		if err := s.Pillars.Validate(); err != nil {
			return nil, nil, err
		}
		if s.Pillars.NX != s.NX || s.Pillars.NY != s.NY {
			return nil, nil, fmt.Errorf("stack: pillar field %dx%d mismatches grid %dx%d", s.Pillars.NX, s.Pillars.NY, s.NX, s.NY)
		}
	}
	if s.PillarsPerTier != nil {
		if len(s.PillarsPerTier) != s.Tiers {
			return nil, nil, fmt.Errorf("stack: %d per-tier pillar fields for %d tiers", len(s.PillarsPerTier), s.Tiers)
		}
		for t, pf := range s.PillarsPerTier {
			if pf == nil {
				return nil, nil, fmt.Errorf("stack: nil pillar field for tier %d", t)
			}
			if err := pf.Validate(); err != nil {
				return nil, nil, err
			}
			if pf.NX != s.NX || pf.NY != s.NY {
				return nil, nil, fmt.Errorf("stack: tier %d pillar field %dx%d mismatches grid", t, pf.NX, pf.NY)
			}
		}
	}
	pillarK := s.PillarK
	if pillarK <= 0 {
		pillarK = PillarKDefault
	}
	cells := s.CellsPerGroup
	if cells < 1 {
		cells = 1
	}
	handleCells := s.HandleCells
	if handleCells < 1 {
		handleCells = 2
	}

	asap := pdk.ASAP7()
	lowerT := asap.LowerThickness()
	upperT := asap.UpperThickness()

	zb := mesh.NewZLayerBuilder()
	zb.Add("handle", pdk.HandleSiliconThickness, handleCells)
	for t := 0; t < s.Tiers; t++ {
		zb.Add(fmt.Sprintf("si%d", t), pdk.DeviceSiliconThickness, 1)
		zb.Add(fmt.Sprintf("lower%d", t), lowerT, cells)
		zb.Add(fmt.Sprintf("upper%d", t), upperT, cells)
		if s.MemoryPerTier {
			zb.Add(fmt.Sprintf("msi%d", t), pdk.DeviceSiliconThickness, 1)
			zb.Add(fmt.Sprintf("mlower%d", t), lowerT, cells)
			zb.Add(fmt.Sprintf("mupper%d", t), upperT, cells)
		}
	}
	xs := make([]float64, s.NX+1)
	for i := range xs {
		xs[i] = s.DieW * float64(i) / float64(s.NX)
	}
	ys := make([]float64, s.NY+1)
	for j := range ys {
		ys[j] = s.DieH * float64(j) / float64(s.NY)
	}
	g, err := mesh.New(xs, ys, zb.Bounds())
	if err != nil {
		return nil, nil, fmt.Errorf("stack: %w", err)
	}

	p := solver.NewProblem(g)
	lay := &Layout{Grid: g, DeviceLayers: make([][]int, s.Tiers), TierOfLayer: make([]int, g.NZ())}

	deviceSi := materials.DeviceSilicon()
	handleSi := materials.HandleSilicon()

	tags := zb.Tags()
	for k := 0; k < g.NZ(); k++ {
		tag := tags[k]
		tier := -1
		isBEOL := false
		var kLat, kVert, cv float64
		kind := tag
		if tag != "handle" {
			// Strip the tier suffix: si3 → si, mlower0 → mlower.
			end := len(tag)
			for end > 0 && tag[end-1] >= '0' && tag[end-1] <= '9' {
				end--
			}
			kind = tag[:end]
			fmt.Sscanf(tag[end:], "%d", &tier)
		}
		switch kind {
		case "handle":
			kLat, kVert, cv = handleSi.KLateral, handleSi.KVertical, handleSi.VolHeatCapacity
		case "si":
			kLat, kVert, cv = deviceSi.KLateral, deviceSi.KVertical, deviceSi.VolHeatCapacity
			lay.DeviceLayers[tier] = append(lay.DeviceLayers[tier], k)
		case "msi":
			kLat, kVert, cv = deviceSi.KLateral, deviceSi.KVertical, deviceSi.VolHeatCapacity
		case "lower", "mlower":
			kLat, kVert, cv = s.BEOL.LowerKLat, s.BEOL.LowerKVert+s.ExtraBEOLKVert, materials.CvOxide
			isBEOL = true
		case "upper", "mupper":
			kLat, kVert, cv = s.BEOL.UpperKLat, s.BEOL.UpperKVert+s.ExtraBEOLKVert, materials.CvOxide
			isBEOL = true
		default:
			return nil, nil, fmt.Errorf("stack: unknown layer tag %q", tag)
		}
		lay.TierOfLayer[k] = tier
		var pillars *PillarField
		if isBEOL {
			switch {
			case s.PillarsPerTier != nil && tier >= 0:
				pillars = s.PillarsPerTier[tier]
			case s.Pillars != nil:
				pillars = s.Pillars
			}
		}
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				c := g.Index(i, j, k)
				kl, kv := kLat, kVert
				if pillars != nil {
					f := pillars.Coverage[j*s.NX+i]
					if f > 0 {
						kv = kv + f*(pillarK-kv)
						kl = kl + f*(pillarK-kl)
					}
				}
				p.SetAniso(c, kl, kv)
				p.Cv[c] = cv
			}
		}
	}
	if err := s.PaintSources(p, lay); err != nil {
		return nil, nil, err
	}
	p.Bounds[solver.ZMin] = solver.ConvectiveBC(s.Sink.H, s.Sink.Ambient())
	if s.InterTierTBR > 0 {
		tbr := make([]float64, g.NZ()-1)
		for k := 0; k+1 < g.NZ(); k++ {
			if lay.TierOfLayer[k] != lay.TierOfLayer[k+1] {
				tbr[k] = s.InterTierTBR
			}
		}
		p.ZPlaneTBR = tbr
	}
	return p, lay, nil
}

// PaintSources writes the spec's power maps into p.Q: each tier's
// device layers receive that tier's map (W/m²) divided by the layer
// thickness. p must share lay's grid. Build calls this as its final
// source step; it is also the fast path for re-targeting a cached
// family geometry at a new power map (solver.Problem.CloneBlankSources
// plus PaintSources is bitwise identical to a full Build).
func (s *Spec) PaintSources(p *solver.Problem, lay *Layout) error {
	switch len(s.PowerMaps) {
	case 1, s.Tiers:
	default:
		return fmt.Errorf("stack: %d power maps for %d tiers", len(s.PowerMaps), s.Tiers)
	}
	for t, pm := range s.PowerMaps {
		if len(pm) != s.NX*s.NY {
			return fmt.Errorf("stack: power map %d has %d cells, want %d", t, len(pm), s.NX*s.NY)
		}
	}
	g := lay.Grid
	for tier, layers := range lay.DeviceLayers {
		pmIdx := 0
		if len(s.PowerMaps) > 1 {
			pmIdx = tier
		}
		pm := s.PowerMaps[pmIdx]
		for _, k := range layers {
			dz := g.DZ(k)
			for j := 0; j < s.NY; j++ {
				for i := 0; i < s.NX; i++ {
					p.Q[g.Index(i, j, k)] = pm[j*s.NX+i] / dz
				}
			}
		}
	}
	return nil
}

// LayeredView extracts the per-layer thicknesses, conductivities,
// and source maps of a pillar-free spec for the spectral direct
// solver (internal/spectral). It errors when a pillar field breaks
// lateral uniformity — the spectral method requires laterally uniform
// conductivity per layer.
func (s *Spec) LayeredView() (dz, kLat, kVert []float64, q [][]float64, err error) {
	if s.Pillars != nil || s.PillarsPerTier != nil {
		return nil, nil, nil, nil, errors.New("stack: spectral view requires a pillar-free stack")
	}
	if s.ExtraBEOLKVert < 0 {
		return nil, nil, nil, nil, errors.New("stack: negative fill boost")
	}
	if s.InterTierTBR > 0 {
		return nil, nil, nil, nil, errors.New("stack: spectral view does not carry interface resistances")
	}
	p, lay, err := s.Build()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g := lay.Grid
	nz := g.NZ()
	dz = make([]float64, nz)
	kLat = make([]float64, nz)
	kVert = make([]float64, nz)
	q = make([][]float64, nz)
	for k := 0; k < nz; k++ {
		dz[k] = g.DZ(k)
		c0 := g.Index(0, 0, k)
		kLat[k] = p.KX[c0]
		kVert[k] = p.KZ[c0]
		// Collect the layer's source map; skip all-zero layers.
		var any bool
		layerQ := make([]float64, s.NX*s.NY)
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				v := p.Q[g.Index(i, j, k)]
				layerQ[j*s.NX+i] = v
				if v != 0 {
					any = true
				}
			}
		}
		if any {
			q[k] = layerQ
		}
	}
	return dz, kLat, kVert, q, nil
}

// Result wraps a solved stack.
type Result struct {
	Spec   *Spec
	Layout *Layout
	Field  *solver.Result
}

// Solve builds and solves the stack. The zero Options.Precond
// (Jacobi) is treated as "unset" and upgraded to the z-line
// preconditioner — plain Jacobi is never the right choice for a chip
// stack's anisotropy; callers wanting multigrid (or, for comparison
// runs, genuinely wanting Jacobi-grade behavior) pass Precond
// explicitly.
func (s *Spec) Solve(opts solver.Options) (*Result, error) {
	p, lay, err := s.Build()
	if err != nil {
		return nil, err
	}
	if opts.Precond == solver.Jacobi {
		opts.Precond = solver.ZLine
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-7
	}
	r, err := solver.SolveSteady(p, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Spec: s, Layout: lay, Field: r}, nil
}

// SolveNonlinear solves the stack with temperature-dependent silicon
// conductivity (k ∝ T^-1.3 around 300 K) applied to the handle and
// device layers — hot stacks conduct measurably worse than the
// constant-property model predicts. BEOL layers keep their
// homogenized values (dielectric and copper temperature coefficients
// are second-order over the 100–150 °C range).
func (s *Spec) SolveNonlinear(opts solver.Options) (*Result, error) {
	p, lay, err := s.Build()
	if err != nil {
		return nil, err
	}
	if opts.Precond == solver.Jacobi {
		// Zero value means unset, as on Solve.
		opts.Precond = solver.ZLine
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-7
	}
	g := lay.Grid
	// Mark silicon cells and remember their 300 K conductivities.
	silicon := make([]bool, g.NumCells())
	baseKX := append([]float64(nil), p.KX...)
	baseKY := append([]float64(nil), p.KY...)
	baseKZ := append([]float64(nil), p.KZ...)
	for k := 0; k < g.NZ(); k++ {
		// Silicon layers: the handle (tier −1) and thin device layers
		// (identified by their 100 nm thickness).
		isSi := lay.TierOfLayer[k] == -1 || g.DZ(k) <= 2*pdk.DeviceSiliconThickness
		if !isSi {
			continue
		}
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				silicon[g.Index(i, j, k)] = true
			}
		}
	}
	nl, err := solver.SolveSteadyNonlinear(p, func(c int, tK float64) (float64, float64, float64) {
		if !silicon[c] {
			return baseKX[c], baseKY[c], baseKZ[c]
		}
		scale := solver.SiliconKScale(tK)
		return baseKX[c] * scale, baseKY[c] * scale, baseKZ[c] * scale
	}, solver.NonlinearOptions{Inner: opts})
	if err != nil {
		return nil, err
	}
	return &Result{Spec: s, Layout: lay, Field: nl.Result}, nil
}

// MaxT returns the peak temperature (K) — the paper's T_j.
func (r *Result) MaxT() float64 { return r.Field.Max() }

// Sink returns the heatsink the stack was solved with.
func (r *Result) Sink() heatsink.Model { return r.Spec.Sink }

// TierMaxT returns the peak temperature (K) within tier t's device
// layer.
func (r *Result) TierMaxT(t int) float64 {
	m := 0.0
	for _, k := range r.Layout.DeviceLayers[t] {
		if v := r.Field.LayerMax(k); v > m {
			m = v
		}
	}
	return m
}

// TotalFlux returns the design heat flux through the sink (W/m²) —
// total power over die area.
func (s *Spec) TotalFlux() float64 {
	total := 0.0
	cellArea := (s.DieW / float64(s.NX)) * (s.DieH / float64(s.NY))
	for t := 0; t < s.Tiers; t++ {
		pmIdx := 0
		if len(s.PowerMaps) > 1 {
			pmIdx = t
		}
		for _, q := range s.PowerMaps[pmIdx] {
			total += q * cellArea
		}
		if len(s.PowerMaps) == 1 {
			// replicated map: multiply once at the end
			total *= float64(s.Tiers)
			break
		}
	}
	return total / (s.DieW * s.DieH)
}
