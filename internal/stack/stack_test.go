package stack

import (
	"math"
	"testing"
	"testing/quick"

	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/units"
)

const testNX, testNY = 16, 16

// gemminiSpec builds a Gemmini stack spec at test resolution.
func gemminiSpec(tiers int, beol BEOLProps, coverage float64) *Spec {
	g := design.Gemmini()
	pm := g.Tier.PowerMap(testNX, testNY)
	spec := &Spec{
		DieW: g.Tier.Die.W, DieH: g.Tier.Die.H,
		Tiers: tiers, NX: testNX, NY: testNY,
		PowerMaps:     [][]float64{pm},
		BEOL:          beol,
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
	if coverage > 0 {
		pf := NewPillarField(testNX, testNY)
		for i := range pf.Coverage {
			pf.Coverage[i] = coverage
		}
		spec.Pillars = pf
	}
	return spec
}

func solveSpec(t *testing.T, s *Spec) *Result {
	t.Helper()
	r, err := s.Solve(solver.Options{Tol: 1e-7, MaxIter: 60000})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBEOLPropsValidate(t *testing.T) {
	for _, b := range []BEOLProps{ConventionalBEOL(), ScaffoldedBEOL(), PaperBEOL(true), PaperBEOL(false)} {
		if err := b.Validate(); err != nil {
			t.Errorf("%+v: %v", b, err)
		}
	}
	if err := (BEOLProps{LowerKVert: -1, LowerKLat: 1, UpperKVert: 1, UpperKLat: 1}).Validate(); err == nil {
		t.Error("negative conductivity accepted")
	}
	// The scaffolded upper group must dwarf the conventional one.
	if ScaffoldedBEOL().UpperKVert < 3*ConventionalBEOL().UpperKVert {
		t.Error("scaffolded BEOL not meaningfully better vertically")
	}
	if ScaffoldedBEOL().UpperKLat < 5*ConventionalBEOL().UpperKLat {
		t.Error("scaffolded BEOL not meaningfully better laterally")
	}
}

func TestBuildRejections(t *testing.T) {
	good := gemminiSpec(2, ConventionalBEOL(), 0)
	if _, _, err := good.Build(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := *good
	bad.DieW = 0
	if _, _, err := bad.Build(); err == nil {
		t.Error("zero die accepted")
	}
	bad = *good
	bad.Tiers = 0
	if _, _, err := bad.Build(); err == nil {
		t.Error("zero tiers accepted")
	}
	bad = *good
	bad.NX = 0
	if _, _, err := bad.Build(); err == nil {
		t.Error("zero resolution accepted")
	}
	bad = *good
	bad.PowerMaps = [][]float64{good.PowerMaps[0], good.PowerMaps[0], good.PowerMaps[0]}
	if _, _, err := bad.Build(); err == nil {
		t.Error("3 power maps for 2 tiers accepted")
	}
	bad = *good
	bad.PowerMaps = [][]float64{good.PowerMaps[0][:5]}
	if _, _, err := bad.Build(); err == nil {
		t.Error("short power map accepted")
	}
	bad = *good
	bad.Pillars = NewPillarField(3, 3)
	if _, _, err := bad.Build(); err == nil {
		t.Error("mismatched pillar field accepted")
	}
	bad = *good
	pf := NewPillarField(testNX, testNY)
	pf.Coverage[0] = 1.5
	bad.Pillars = pf
	if _, _, err := bad.Build(); err == nil {
		t.Error("coverage > 1 accepted")
	}
	bad = *good
	bad.BEOL = BEOLProps{}
	if _, _, err := bad.Build(); err == nil {
		t.Error("zero BEOL accepted")
	}
	bad = *good
	bad.Sink = heatsink.Model{Name: "broken"}
	if _, _, err := bad.Build(); err == nil {
		t.Error("invalid sink accepted")
	}
}

func TestPillarField(t *testing.T) {
	pf := NewPillarField(4, 4)
	if pf.Mean() != 0 {
		t.Error("fresh field not zero")
	}
	for i := range pf.Coverage {
		pf.Coverage[i] = 0.25
	}
	if math.Abs(pf.Mean()-0.25) > 1e-12 {
		t.Errorf("mean = %g", pf.Mean())
	}
	if err := pf.Validate(); err != nil {
		t.Error(err)
	}
	if (&PillarField{NX: 2, NY: 2, Coverage: []float64{0}}).Validate() == nil {
		t.Error("short coverage accepted")
	}
	if (&PillarField{}).Mean() != 0 {
		t.Error("empty field mean not zero")
	}
}

// TestTierMonotonicity: stacking more tiers raises the peak.
func TestTierMonotonicity(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		r := solveSpec(t, gemminiSpec(n, ConventionalBEOL(), 0))
		if r.MaxT() <= prev {
			t.Fatalf("N=%d: peak %g not above previous %g", n, r.MaxT(), prev)
		}
		prev = r.MaxT()
	}
}

// TestPaperAnchor125C: the headline — conventional 3D thermal
// supports only ~3-4 Gemmini tiers under 125 °C, while scaffolding
// with ~10 % pillar coverage supports 12 (Fig. 9, Observation 1).
func TestPaperAnchor125C(t *testing.T) {
	limit := units.CelsiusToKelvin(125)
	conv4 := solveSpec(t, gemminiSpec(4, ConventionalBEOL(), 0))
	if conv4.MaxT() > limit {
		t.Errorf("conventional N=4 already over 125°C: %s", units.FormatTemp(conv4.MaxT()))
	}
	conv6 := solveSpec(t, gemminiSpec(6, ConventionalBEOL(), 0))
	if conv6.MaxT() < limit {
		t.Errorf("conventional N=6 should exceed 125°C: %s", units.FormatTemp(conv6.MaxT()))
	}
	scaf12 := solveSpec(t, gemminiSpec(12, ScaffoldedBEOL(), 0.10))
	if scaf12.MaxT() > limit {
		t.Errorf("scaffolded N=12 @10%% coverage over 125°C: %s", units.FormatTemp(scaf12.MaxT()))
	}
}

// TestUnscaffolded12TiersIsCatastrophic: without cooling structures,
// 12 tiers run away (paper: ≥353 °C at iso-footprint/delay).
func TestUnscaffolded12TiersIsCatastrophic(t *testing.T) {
	r := solveSpec(t, gemminiSpec(12, ConventionalBEOL(), 0))
	if got := units.KelvinToCelsius(r.MaxT()); got < 250 {
		t.Errorf("12 unscaffolded tiers at %g°C, expected thermal runaway (paper: 353°C)", got)
	}
}

// TestPillarCoverageMonotone: more pillar coverage, cooler chip.
func TestPillarCoverageMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, cov := range []float64{0, 0.05, 0.10, 0.20} {
		r := solveSpec(t, gemminiSpec(8, ScaffoldedBEOL(), cov))
		if r.MaxT() >= prev {
			t.Fatalf("coverage %g did not cool (%g vs %g)", cov, r.MaxT(), prev)
		}
		prev = r.MaxT()
	}
}

// TestThermalDielectricAlone: swapping the upper dielectric without
// pillars helps only modestly — the combination is what matters
// (scaffold = dielectric × pillars).
func TestThermalDielectricAlone(t *testing.T) {
	conv := solveSpec(t, gemminiSpec(12, ConventionalBEOL(), 0))
	tdOnly := solveSpec(t, gemminiSpec(12, ScaffoldedBEOL(), 0))
	both := solveSpec(t, gemminiSpec(12, ScaffoldedBEOL(), 0.10))
	if tdOnly.MaxT() >= conv.MaxT() {
		t.Error("thermal dielectric alone should not hurt")
	}
	riseTD := tdOnly.MaxT() - conv.Sink().Ambient()
	riseBoth := both.MaxT() - conv.Sink().Ambient()
	if riseBoth > 0.5*riseTD {
		t.Errorf("pillars+dielectric rise %g K not far below dielectric-only %g K", riseBoth, riseTD)
	}
}

// TestTopTierHottest: heat flows down to the sink, so the top tier
// runs hottest (Fig. 1's T_j at the top).
func TestTopTierHottest(t *testing.T) {
	r := solveSpec(t, gemminiSpec(6, ConventionalBEOL(), 0))
	for tier := 1; tier < 6; tier++ {
		if r.TierMaxT(tier) <= r.TierMaxT(tier-1) {
			t.Fatalf("tier %d (%g) not hotter than tier %d (%g)",
				tier, r.TierMaxT(tier), tier-1, r.TierMaxT(tier-1))
		}
	}
	if r.TierMaxT(5) != r.MaxT() {
		t.Error("global peak should be in the top tier")
	}
}

// TestMemoryPerTierAddsResistance: the interleaved memory sub-layer
// raises the peak at equal power.
func TestMemoryPerTierAddsResistance(t *testing.T) {
	with := gemminiSpec(8, ConventionalBEOL(), 0)
	without := gemminiSpec(8, ConventionalBEOL(), 0)
	without.MemoryPerTier = false
	rWith := solveSpec(t, with)
	rWithout := solveSpec(t, without)
	if rWith.MaxT() <= rWithout.MaxT() {
		t.Errorf("memory sub-layer did not add resistance: %g vs %g", rWith.MaxT(), rWithout.MaxT())
	}
}

// TestExtraBEOLKVertCools: the dummy-fill conductivity boost cools
// the stack (conventional flow mechanism).
func TestExtraBEOLKVertCools(t *testing.T) {
	base := gemminiSpec(8, ConventionalBEOL(), 0)
	boosted := gemminiSpec(8, ConventionalBEOL(), 0)
	boosted.ExtraBEOLKVert = 3
	rb := solveSpec(t, base)
	rx := solveSpec(t, boosted)
	if rx.MaxT() >= rb.MaxT() {
		t.Error("fill boost did not cool")
	}
}

// TestTotalFlux: replicated map gives N × per-tier mean flux.
func TestTotalFlux(t *testing.T) {
	g := design.Gemmini()
	s := gemminiSpec(12, ConventionalBEOL(), 0)
	want := 12 * g.Tier.MeanPowerDensity()
	got := s.TotalFlux()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("flux %g, want %g", got, want)
	}
	// Per-tier maps: scale one tier's map.
	pm := g.Tier.PowerMap(testNX, testNY)
	half := make([]float64, len(pm))
	for i := range half {
		half[i] = pm[i] / 2
	}
	s2 := gemminiSpec(2, ConventionalBEOL(), 0)
	s2.PowerMaps = [][]float64{pm, half}
	want2 := 1.5 * g.Tier.MeanPowerDensity()
	if got2 := s2.TotalFlux(); math.Abs(got2-want2)/want2 > 0.02 {
		t.Errorf("per-tier flux %g, want %g", got2, want2)
	}
}

// TestSchedulingDirection: assigning the high-power task to the tier
// nearest the sink cools the stack versus the reverse — the
// mechanism exploited by thermal-aware scheduling (Sec. III-B).
func TestSchedulingDirection(t *testing.T) {
	g := design.Gemmini()
	pm := g.Tier.PowerMap(testNX, testNY)
	hot := pm
	cold := make([]float64, len(pm))
	for i := range cold {
		cold[i] = pm[i] * 0.2
	}
	mk := func(maps [][]float64) *Spec {
		s := gemminiSpec(4, ConventionalBEOL(), 0)
		s.PowerMaps = maps
		return s
	}
	// Bottom tier (index 0) is nearest the sink.
	goodOrder := solveSpec(t, mk([][]float64{hot, hot, cold, cold}))
	badOrder := solveSpec(t, mk([][]float64{cold, cold, hot, hot}))
	if goodOrder.MaxT() >= badOrder.MaxT() {
		t.Errorf("hot-near-sink (%g) should beat hot-far (%g)", goodOrder.MaxT(), badOrder.MaxT())
	}
}

// TestStackLinearityQuick: the stack problem is linear — scaling the
// power map scales the rise over ambient (testing/quick over random
// scale factors).
func TestStackLinearityQuick(t *testing.T) {
	base := gemminiSpec(4, ConventionalBEOL(), 0)
	rBase := solveSpec(t, base)
	amb := base.Sink.Ambient()
	riseBase := rBase.MaxT() - amb
	f := func(raw float64) bool {
		alpha := 0.2 + math.Mod(math.Abs(raw), 3)
		s := gemminiSpec(4, ConventionalBEOL(), 0)
		pm := make([]float64, len(s.PowerMaps[0]))
		for i, q := range s.PowerMaps[0] {
			pm[i] = q * alpha
		}
		s.PowerMaps = [][]float64{pm}
		r, err := s.Solve(solver.Options{Tol: 1e-9, MaxIter: 60000})
		if err != nil {
			return false
		}
		return math.Abs((r.MaxT()-amb)-alpha*riseBase) < 1e-3*alpha*riseBase+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPillarFieldLabels: the BEOL label distinguishes the variants.
func TestBEOLLabels(t *testing.T) {
	if ConventionalBEOL().Label() != "ultra-low-k" {
		t.Error("conventional label wrong")
	}
	if ScaffoldedBEOL().Label() != "thermal-dielectric" {
		t.Error("scaffolded label wrong")
	}
}

// TestInterTierTBR: the paper's [34]-based claim — CMOS interface
// conductance near 10⁹ W/m²/K makes tier-boundary TBR negligible —
// holds in our stack; a pathological interface is not negligible.
func TestInterTierTBR(t *testing.T) {
	base := gemminiSpec(8, ConventionalBEOL(), 0)
	r0 := solveSpec(t, base)

	paper := gemminiSpec(8, ConventionalBEOL(), 0)
	paper.InterTierTBR = 1e-9 // [34]
	rp := solveSpec(t, paper)
	if d := rp.MaxT() - r0.MaxT(); d < 0 || d > 0.5 {
		t.Errorf("paper-grade TBR changed peak by %g K — should be negligible (<0.5)", d)
	}

	bad := gemminiSpec(8, ConventionalBEOL(), 0)
	bad.InterTierTBR = 1e-6 // pathological bonding interface
	rb := solveSpec(t, bad)
	if rb.MaxT()-r0.MaxT() < 5 {
		t.Errorf("pathological TBR only added %g K", rb.MaxT()-r0.MaxT())
	}
}

// TestZPlaneTBRValidation: malformed interface arrays are rejected.
func TestZPlaneTBRValidation(t *testing.T) {
	s := gemminiSpec(2, ConventionalBEOL(), 0)
	p, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.ZPlaneTBR = []float64{1e-9}
	if err := p.Validate(); err == nil {
		t.Error("short TBR array accepted")
	}
	p.ZPlaneTBR = make([]float64, p.Grid.NZ()-1)
	p.ZPlaneTBR[0] = -1
	if err := p.Validate(); err == nil {
		t.Error("negative TBR accepted")
	}
}

// TestSolveNonlinearSilicon: temperature-dependent silicon makes hot
// stacks hotter — a bounded, second-order correction.
func TestSolveNonlinearSilicon(t *testing.T) {
	spec := gemminiSpec(8, ConventionalBEOL(), 0)
	lin := solveSpec(t, spec)
	nl, err := spec.SolveNonlinear(solver.Options{Tol: 1e-7, MaxIter: 60000})
	if err != nil {
		t.Fatal(err)
	}
	amb := spec.Sink.Ambient()
	riseLin := lin.MaxT() - amb
	riseNl := nl.MaxT() - amb
	if riseNl <= riseLin {
		t.Errorf("nonlinear rise %g not above linear %g", riseNl, riseLin)
	}
	if riseNl > 1.5*riseLin {
		t.Errorf("nonlinear correction implausibly large: %g vs %g", riseNl, riseLin)
	}
}
