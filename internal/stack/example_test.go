package stack_test

import (
	"fmt"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/units"
)

// Example solves the paper's headline configuration: 12 uniformly
// powered tiers with scaffolded BEOL and 10 % pillar coverage on a
// two-phase heatsink.
func Example() {
	const n = 12
	pm := make([]float64, n*n)
	for i := range pm {
		pm[i] = units.WPerCm2ToWPerM2(53) // the per-tier Gemmini density
	}
	pf := stack.NewPillarField(n, n)
	for i := range pf.Coverage {
		pf.Coverage[i] = 0.10
	}
	spec := &stack.Spec{
		DieW: 690e-6, DieH: 660e-6,
		Tiers: 12, NX: n, NY: n,
		PowerMaps:     [][]float64{pm},
		BEOL:          stack.ScaffoldedBEOL(),
		Pillars:       pf,
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
	res, err := spec.Solve(solver.Options{Tol: 1e-7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("12 tiers under 125°C: %v\n", res.MaxT() < units.CelsiusToKelvin(125))
	// Output: 12 tiers under 125°C: true
}
