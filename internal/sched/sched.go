// Package sched implements the thermal-aware task scheduling baseline
// (Sec. III-B): an N-tier design has N copies of the same tier; each
// copy is ranked by effective thermal resistance — simulated with all
// other copies turned off — and the highest-power tasks are assigned
// to the copies with the lowest thermal resistance (those nearest the
// heatsink). This mimics thermal-aware task assignment of known
// workloads in real systems; the paper notes dynamic swapping [4]
// achieves similar results.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

// Task is one schedulable workload with a relative power scale
// (1.0 = the design's nominal power).
type Task struct {
	Name  string
	Scale float64
}

// UniformTasks returns n identical nominal-power tasks.
func UniformTasks(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{Name: fmt.Sprintf("task-%d", i), Scale: 1}
	}
	return out
}

// SpreadTasks returns n tasks whose power scales span 1±spread
// linearly — a heterogeneous workload mix for the scheduler to
// exploit. Mean scale is 1 so total power matches the uniform case.
func SpreadTasks(n int, spread float64) []Task {
	out := make([]Task, n)
	for i := range out {
		t := 0.5
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		out[i] = Task{Name: fmt.Sprintf("task-%d", i), Scale: 1 + spread*(1-2*t)}
	}
	return out
}

// TierRank holds one tier's measured thermal resistance.
type TierRank struct {
	Tier       int
	Resistance float64 // K/W: peak rise per watt with only this tier powered
}

// RankTiers measures each tier copy's effective thermal resistance by
// solving the stack with only that tier powered, and returns the
// tiers sorted by increasing resistance (coolest spot first).
func RankTiers(spec *stack.Spec, opts solver.Options) ([]TierRank, error) {
	if spec == nil {
		return nil, errors.New("sched: nil spec")
	}
	if len(spec.PowerMaps) != 1 {
		return nil, errors.New("sched: ranking expects a single replicated power map")
	}
	base := spec.PowerMaps[0]
	n := spec.Tiers
	cellArea := (spec.DieW / float64(spec.NX)) * (spec.DieH / float64(spec.NY))
	tierPower := 0.0
	for _, q := range base {
		tierPower += q * cellArea
	}
	if tierPower <= 0 {
		return nil, errors.New("sched: tier has no power")
	}
	zero := make([]float64, len(base))
	ranks := make([]TierRank, n)
	for t := 0; t < n; t++ {
		maps := make([][]float64, n)
		for i := range maps {
			maps[i] = zero
		}
		maps[t] = base
		s := *spec
		s.PowerMaps = maps
		res, err := s.Solve(opts)
		if err != nil {
			return nil, fmt.Errorf("sched: ranking tier %d: %w", t, err)
		}
		ranks[t] = TierRank{Tier: t, Resistance: (res.MaxT() - spec.Sink.Ambient()) / tierPower}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Resistance < ranks[j].Resistance })
	return ranks, nil
}

// Assign maps tasks onto tiers: the highest-power task goes to the
// lowest-resistance tier, and so on. It returns per-tier power maps
// (bottom tier first) scaling the base map by each tier's assigned
// task.
func Assign(base []float64, ranks []TierRank, tasks []Task) ([][]float64, error) {
	if len(ranks) != len(tasks) {
		return nil, fmt.Errorf("sched: %d tasks for %d tiers", len(tasks), len(ranks))
	}
	sorted := append([]Task(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Scale > sorted[j].Scale })
	maps := make([][]float64, len(ranks))
	for i, r := range ranks {
		scaled := make([]float64, len(base))
		for c := range base {
			scaled[c] = base[c] * sorted[i].Scale
		}
		maps[r.Tier] = scaled
	}
	return maps, nil
}

// NaiveAssign assigns tasks to tiers in index order — the unscheduled
// baseline (worst case: high-power tasks may land far from the sink).
func NaiveAssign(base []float64, tiers int, tasks []Task) ([][]float64, error) {
	if tiers != len(tasks) {
		return nil, fmt.Errorf("sched: %d tasks for %d tiers", len(tasks), tiers)
	}
	// Adversarial order: ascending scale from the sink, so the hottest
	// task sits farthest away.
	sorted := append([]Task(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Scale < sorted[j].Scale })
	maps := make([][]float64, tiers)
	for t := 0; t < tiers; t++ {
		scaled := make([]float64, len(base))
		for c := range base {
			scaled[c] = base[c] * sorted[t].Scale
		}
		maps[t] = scaled
	}
	return maps, nil
}

// Schedule runs the full pipeline: rank tiers, assign tasks, and
// return the per-tier power maps ready for stack.Spec.PowerMaps.
func Schedule(spec *stack.Spec, tasks []Task, opts solver.Options) ([][]float64, []TierRank, error) {
	ranks, err := RankTiers(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	maps, err := Assign(spec.PowerMaps[0], ranks, tasks)
	if err != nil {
		return nil, nil, err
	}
	return maps, ranks, nil
}
