package sched

import (
	"math"
	"testing"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/units"
)

func TestThermalTimeConstant(t *testing.T) {
	spec := testSpec(12)
	tau := ThermalTimeConstant(spec)
	// A thin stack on an h=10⁶ sink settles in tens of µs.
	if tau < 5e-6 || tau > 5e-4 {
		t.Errorf("time constant %g s implausible", tau)
	}
	thin := testSpec(2)
	if ThermalTimeConstant(thin) >= tau {
		t.Error("fewer tiers should settle faster")
	}
	noMem := testSpec(12)
	noMem.MemoryPerTier = false
	if ThermalTimeConstant(noMem) >= tau {
		t.Error("memory sub-layer should add capacitance")
	}
}

// TestRotationApproachesStatic: fast rotation lands between the
// statically scheduled optimum and the adversarial order — the
// paper's "similar results could be achieved by dynamic swapping".
func TestRotationApproachesStatic(t *testing.T) {
	spec := testSpec(4)
	tasks := SpreadTasks(4, 0.5)
	tau := ThermalTimeConstant(spec)

	// Static bounds.
	maps, _, err := Schedule(spec, tasks, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	good := *spec
	good.PowerMaps = maps
	rGood, err := good.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveAssign(spec.PowerMaps[0], 4, tasks)
	if err != nil {
		t.Fatal(err)
	}
	bad := *spec
	bad.PowerMaps = naive
	rBad, err := bad.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	goodC := units.KelvinToCelsius(rGood.MaxT())
	badC := units.KelvinToCelsius(rBad.MaxT())

	// Rotate fast relative to the time constant, long enough to reach
	// quasi-steady state.
	res, err := SimulateRotation(spec, tasks, tau/2, tau/8, 24, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rotations != 23 {
		t.Errorf("expected 23 rotations, got %d", res.Rotations)
	}
	if res.FinalC < goodC-1.5 {
		t.Errorf("rotation final %g°C implausibly below static optimum %g°C", res.FinalC, goodC)
	}
	if res.FinalC > badC+0.5 {
		t.Errorf("rotation final %g°C above adversarial static %g°C", res.FinalC, badC)
	}
	// It must have heated from ambient.
	if res.PeakC <= spec.Sink.AmbientC+1 {
		t.Errorf("stack never heated: peak %g°C", res.PeakC)
	}
	// Trace shapes.
	if len(res.Times) != len(res.Peaks) || len(res.Times) == 0 {
		t.Fatal("empty or mismatched trace")
	}
	for i := 1; i < len(res.Times); i++ {
		if res.Times[i] <= res.Times[i-1] {
			t.Fatal("time not advancing")
		}
	}
}

// TestRotationHeatingMonotoneEarly: from a cold start the peak climbs
// during the first period.
func TestRotationHeatingMonotoneEarly(t *testing.T) {
	spec := testSpec(3)
	tasks := UniformTasks(3)
	tau := ThermalTimeConstant(spec)
	res, err := SimulateRotation(spec, tasks, tau, tau/6, 2, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if res.Peaks[i] < res.Peaks[i-1]-1e-9 {
			t.Fatalf("cold-start heating not monotone at step %d", i)
		}
	}
	if math.Abs(res.PeakC-res.FinalC) > 30 {
		t.Error("suspicious peak/final gap on uniform tasks")
	}
}

func TestSimulateRotationRejections(t *testing.T) {
	spec := testSpec(2)
	tasks := UniformTasks(2)
	if _, err := SimulateRotation(nil, tasks, 1e-5, 1e-6, 1, solver.Options{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := SimulateRotation(spec, UniformTasks(3), 1e-5, 1e-6, 1, solver.Options{}); err == nil {
		t.Error("task/tier mismatch accepted")
	}
	if _, err := SimulateRotation(spec, tasks, 0, 1e-6, 1, solver.Options{}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := SimulateRotation(spec, tasks, 1e-6, 1e-5, 1, solver.Options{}); err == nil {
		t.Error("dt > period accepted")
	}
	if _, err := SimulateRotation(spec, tasks, 1e-5, 1e-6, 0, solver.Options{}); err == nil {
		t.Error("zero cycles accepted")
	}
	multi := testSpec(2)
	multi.PowerMaps = [][]float64{multi.PowerMaps[0], multi.PowerMaps[0]}
	if _, err := SimulateRotation(multi, tasks, 1e-5, 1e-6, 1, solver.Options{}); err == nil {
		t.Error("multi-map spec accepted")
	}
}
