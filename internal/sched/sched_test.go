package sched

import (
	"math"
	"testing"

	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/units"
)

func testSpec(tiers int) *stack.Spec {
	g := design.Gemmini()
	const nx, ny = 12, 12
	return &stack.Spec{
		DieW: g.Tier.Die.W, DieH: g.Tier.Die.H,
		Tiers: tiers, NX: nx, NY: ny,
		PowerMaps:     [][]float64{g.Tier.PowerMap(nx, ny)},
		BEOL:          stack.ConventionalBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
}

func TestTasks(t *testing.T) {
	u := UniformTasks(4)
	if len(u) != 4 || u[0].Scale != 1 {
		t.Fatalf("UniformTasks = %v", u)
	}
	s := SpreadTasks(4, 0.2)
	if math.Abs(s[0].Scale-1.2) > 1e-12 || math.Abs(s[3].Scale-0.8) > 1e-12 {
		t.Errorf("SpreadTasks extremes wrong: %v", s)
	}
	mean := 0.0
	for _, task := range s {
		mean += task.Scale
	}
	if math.Abs(mean/4-1) > 1e-12 {
		t.Errorf("task scales do not average to 1: %g", mean/4)
	}
	one := SpreadTasks(1, 0.2)
	if math.Abs(one[0].Scale-1) > 1e-12 {
		t.Errorf("single task scale %g, want 1", one[0].Scale)
	}
}

// TestRankTiersOrdering: tiers nearer the heatsink have lower
// effective thermal resistance — the paper's ranking criterion.
func TestRankTiersOrdering(t *testing.T) {
	spec := testSpec(4)
	ranks, err := RankTiers(spec, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 4 {
		t.Fatalf("got %d ranks", len(ranks))
	}
	for i := range ranks {
		if ranks[i].Tier != i {
			t.Errorf("rank %d is tier %d — expected sink-adjacent tiers to rank coolest", i, ranks[i].Tier)
		}
		if i > 0 && ranks[i].Resistance <= ranks[i-1].Resistance {
			t.Errorf("resistance not increasing at rank %d", i)
		}
	}
	if ranks[0].Resistance <= 0 {
		t.Error("non-positive thermal resistance")
	}
}

func TestRankTiersRejections(t *testing.T) {
	if _, err := RankTiers(nil, solver.Options{}); err == nil {
		t.Error("nil spec accepted")
	}
	spec := testSpec(2)
	spec.PowerMaps = [][]float64{spec.PowerMaps[0], spec.PowerMaps[0]}
	if _, err := RankTiers(spec, solver.Options{}); err == nil {
		t.Error("multi-map spec accepted")
	}
	cold := testSpec(2)
	cold.PowerMaps = [][]float64{make([]float64, 12*12)}
	if _, err := RankTiers(cold, solver.Options{}); err == nil {
		t.Error("powerless spec accepted")
	}
}

// TestScheduleBeatsNaive: assigning hot tasks near the sink lowers
// the peak versus the adversarial order.
func TestScheduleBeatsNaive(t *testing.T) {
	spec := testSpec(4)
	tasks := SpreadTasks(4, 0.5)
	maps, ranks, err := Schedule(spec, tasks, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 4 || len(ranks) != 4 {
		t.Fatalf("bad schedule shapes: %d maps, %d ranks", len(maps), len(ranks))
	}
	good := *spec
	good.PowerMaps = maps
	rGood, err := good.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveAssign(spec.PowerMaps[0], 4, tasks)
	if err != nil {
		t.Fatal(err)
	}
	bad := *spec
	bad.PowerMaps = naive
	rBad, err := bad.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if rGood.MaxT() >= rBad.MaxT() {
		t.Errorf("scheduling did not help: %s vs %s",
			units.FormatTemp(rGood.MaxT()), units.FormatTemp(rBad.MaxT()))
	}
}

// TestSchedulePreservesTotalPower: the assignment is a permutation of
// scaled maps, conserving total power.
func TestSchedulePreservesTotalPower(t *testing.T) {
	spec := testSpec(3)
	tasks := SpreadTasks(3, 0.3)
	maps, _, err := Schedule(spec, tasks, solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	var scheduled, base float64
	for _, m := range maps {
		for _, q := range m {
			scheduled += q
		}
	}
	for _, q := range spec.PowerMaps[0] {
		base += q
	}
	if math.Abs(scheduled-3*base) > 1e-6*base {
		t.Errorf("power not conserved: %g vs %g", scheduled, 3*base)
	}
}

func TestAssignRejections(t *testing.T) {
	if _, err := Assign(nil, make([]TierRank, 2), UniformTasks(3)); err == nil {
		t.Error("mismatched tasks accepted")
	}
	if _, err := NaiveAssign(nil, 2, UniformTasks(3)); err == nil {
		t.Error("mismatched naive tasks accepted")
	}
}
