package sched

// Closed-loop DTM regression suite. The headline test is the limit
// guarantee: a synthetic burst trace that violates 125 °C open-loop
// must stay under the limit with the controller engaged, with the
// throttle-event count pinned (the loop is deterministic at a fixed
// worker count).

import (
	"math"
	"testing"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/telemetry"
)

// dtmDemand is the synthetic hot trace: two 2× bursts separated by
// idle. On the 4-tier conventional Gemmini stack the bursts reach
// ~142 °C open-loop; throttled to 1× they settle at ~122 °C.
func dtmDemand() []DemandPhase {
	return []DemandPhase{
		{Name: "idle", Scale: 0.6, Steps: 25},
		{Name: "burst", Scale: 2.0, Steps: 40},
		{Name: "idle", Scale: 0.6, Steps: 25},
		{Name: "burst", Scale: 2.0, Steps: 40},
	}
}

const dtmDt = 5e-6 // ≈ τ/6 for the 4-tier stack: phases reach quasi-steady

func TestDTMClosedLoopHoldsLimit(t *testing.T) {
	spec := testSpec(4)
	tel := telemetry.New()
	opts := solver.Options{Tol: 1e-6, Workers: 1, Telemetry: tel}

	open, err := SimulateDTM(spec, dtmDemand(), dtmDt, DTMConfig{Disabled: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if open.PeakC <= 125 {
		t.Fatalf("open-loop peak %.1f °C does not violate the limit — trace not hot enough", open.PeakC)
	}
	if open.ViolationSteps == 0 || open.ViolationTimeS <= 0 {
		t.Fatalf("open-loop run recorded no violation time: %+v", open)
	}
	if open.ThrottleEvents != 0 || open.ThrottledSteps != 0 {
		t.Fatalf("disabled controller throttled: %+v", open)
	}

	closed, err := SimulateDTM(spec, dtmDemand(), dtmDt, DTMConfig{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if closed.PeakC > 125 {
		t.Fatalf("closed-loop peak %.2f °C exceeds the 125 °C limit", closed.PeakC)
	}
	if closed.ViolationSteps != 0 || closed.ViolationTimeS != 0 {
		t.Fatalf("closed loop recorded violations: %+v", closed)
	}
	// One engagement per burst, deterministic at Workers=1.
	if closed.ThrottleEvents != 2 {
		t.Fatalf("throttle events = %d, want 2 (one per burst)", closed.ThrottleEvents)
	}
	if closed.ThrottledSteps == 0 {
		t.Fatal("controller engaged but no steps ran throttled")
	}
	total := 0
	for _, ph := range dtmDemand() {
		total += ph.Steps
	}
	if len(closed.Peaks) != total || len(closed.Times) != total || len(closed.Throttled) != total {
		t.Fatalf("trace lengths %d/%d/%d, want %d", len(closed.Peaks), len(closed.Times), len(closed.Throttled), total)
	}
	// Telemetry mirrors the result counters (open contributed no events).
	if got := tel.Counter(telemetry.CounterThrottleEvents); got != int64(closed.ThrottleEvents) {
		t.Errorf("telemetry throttle_events = %d, want %d", got, closed.ThrottleEvents)
	}
	if got := tel.Counter(telemetry.CounterViolationSteps); got != int64(open.ViolationSteps) {
		t.Errorf("telemetry violation_steps = %d, want %d (open-loop run's)", got, open.ViolationSteps)
	}
}

// TestDTMDeterministic: two identical runs agree bitwise — the
// controller reads only solver output.
func TestDTMDeterministic(t *testing.T) {
	spec := testSpec(4)
	opts := solver.Options{Tol: 1e-6, Workers: 1}
	a, err := SimulateDTM(spec, dtmDemand(), dtmDt, DTMConfig{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDTM(spec, dtmDemand(), dtmDt, DTMConfig{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.PeakC) != math.Float64bits(b.PeakC) || a.ThrottleEvents != b.ThrottleEvents {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.Peaks {
		if math.Float64bits(a.Peaks[i]) != math.Float64bits(b.Peaks[i]) {
			t.Fatalf("peak trace differs at step %d", i)
		}
	}
}

func TestDTMValidation(t *testing.T) {
	spec := testSpec(2)
	ok := []DemandPhase{{Scale: 1, Steps: 1}}
	opts := solver.Options{Tol: 1e-6, Workers: 1}
	cases := []struct {
		name   string
		spec   bool // nil spec
		demand []DemandPhase
		dt     float64
		cfg    DTMConfig
	}{
		{name: "nil-spec", spec: true, demand: ok, dt: dtmDt},
		{name: "empty-demand", demand: nil, dt: dtmDt},
		{name: "bad-scale", demand: []DemandPhase{{Scale: -1, Steps: 1}}, dt: dtmDt},
		{name: "bad-steps", demand: []DemandPhase{{Scale: 1, Steps: 0}}, dt: dtmDt},
		{name: "bad-dt", demand: ok, dt: 0},
		{name: "bad-limit", demand: ok, dt: dtmDt, cfg: DTMConfig{LimitC: -5}},
		{name: "bad-throttle", demand: ok, dt: dtmDt, cfg: DTMConfig{ThrottleScale: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := spec
			if tc.spec {
				s = nil
			}
			if _, err := SimulateDTM(s, tc.demand, tc.dt, tc.cfg, opts); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}
