package sched

import (
	"errors"
	"fmt"
	"math"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

// DynamicResult summarizes a transient task-rotation simulation.
type DynamicResult struct {
	// PeakC is the highest temperature reached during the run (°C).
	PeakC float64
	// FinalC is the peak temperature at the end of the run.
	FinalC float64
	// Times and Peaks trace the run (s, °C).
	Times []float64
	Peaks []float64
	// Rotations counts completed assignment swaps.
	Rotations int
}

// SimulateRotation runs a transient simulation of dynamic task
// swapping ([4], the paper's Sec. III-B alternative to static
// assignment): every period seconds the task→tier assignment rotates
// by one position, so no tier holds the hottest task for long. The
// stack starts at the sink ambient. dt is the integration step;
// cycles is the number of rotation periods simulated.
//
// The paper notes static thermal-aware assignment and dynamic
// swapping achieve similar results: with rotation periods well below
// the stack's thermal time constant, the time-averaged power per
// tier approaches uniform, which is what the static scheduler
// engineers spatially.
func SimulateRotation(spec *stack.Spec, tasks []Task, period, dt float64, cycles int, opts solver.Options) (*DynamicResult, error) {
	if spec == nil {
		return nil, errors.New("sched: nil spec")
	}
	if len(spec.PowerMaps) != 1 {
		return nil, errors.New("sched: rotation expects a single replicated power map")
	}
	if len(tasks) != spec.Tiers {
		return nil, fmt.Errorf("sched: %d tasks for %d tiers", len(tasks), spec.Tiers)
	}
	if period <= 0 || dt <= 0 || dt > period {
		return nil, fmt.Errorf("sched: bad timing period=%g dt=%g", period, dt)
	}
	if cycles < 1 {
		return nil, fmt.Errorf("sched: bad cycle count %d", cycles)
	}
	base := spec.PowerMaps[0]

	assignAt := func(rot int) [][]float64 {
		maps := make([][]float64, spec.Tiers)
		for t := 0; t < spec.Tiers; t++ {
			task := tasks[(t+rot)%len(tasks)]
			m := make([]float64, len(base))
			for c := range base {
				m[c] = base[c] * task.Scale
			}
			maps[t] = m
		}
		return maps
	}

	// Build the problem once with the initial assignment.
	work := *spec
	work.PowerMaps = assignAt(0)
	p, _, err := work.Build()
	if err != nil {
		return nil, err
	}
	init := make([]float64, len(p.Q))
	amb := spec.Sink.Ambient()
	for i := range init {
		init[i] = amb
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.Precond == solver.Jacobi {
		// Zero value means unset, as on stack.Spec.Solve.
		opts.Precond = solver.ZLine
	}
	tr, err := solver.NewTransient(p, init, opts)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	out := &DynamicResult{}
	stepsPerPeriod := int(math.Round(period / dt))
	if stepsPerPeriod < 1 {
		stepsPerPeriod = 1
	}
	for cycle := 0; cycle < cycles; cycle++ {
		if cycle > 0 {
			rot := *spec
			rot.PowerMaps = assignAt(cycle)
			pr, _, err := rot.Build()
			if err != nil {
				return nil, err
			}
			if err := tr.SetSources(pr.Q); err != nil {
				return nil, err
			}
			out.Rotations++
		}
		for s := 0; s < stepsPerPeriod; s++ {
			if err := tr.Step(dt); err != nil {
				return nil, err
			}
			peakC := tr.MaxField() - 273.15
			out.Times = append(out.Times, tr.Time())
			out.Peaks = append(out.Peaks, peakC)
			if peakC > out.PeakC {
				out.PeakC = peakC
			}
		}
	}
	out.FinalC = out.Peaks[len(out.Peaks)-1]
	return out, nil
}

// ThermalTimeConstant estimates the stack's lumped thermal time
// constant (s): total heat capacitance per area over the heatsink
// conductance per area. Rotation periods well below this smooth the
// temperature field; periods well above behave like a sequence of
// static assignments.
func ThermalTimeConstant(spec *stack.Spec) float64 {
	// Per-area capacitance: handle plus per-tier layers (doubled for
	// the memory sub-layer), using silicon/oxide volumetrics.
	const (
		cvSi    = 1.66e6
		cvOxide = 1.60e6
		tSi     = 100e-9
		tBEOL   = 940e-9
		tHandle = 10e-6
	)
	perTier := tSi*cvSi + tBEOL*cvOxide
	if spec.MemoryPerTier {
		perTier *= 2
	}
	capacitance := tHandle*cvSi + float64(spec.Tiers)*perTier
	return capacitance / spec.Sink.H
}
