package sched

// Closed-loop dynamic thermal management (DTM): the runtime
// counterpart of the static assignment baseline. Where Schedule places
// known workloads spatially and SimulateRotation smooths them by
// swapping, the DTM controller reacts — it watches the integrated peak
// temperature, predicts one control step ahead, and throttles block
// power when the prediction crosses the thermal limit, recovering with
// hysteresis when headroom returns. This is the guardrail a real
// ultra-dense stack runs under: the paper's 125 °C constraint enforced
// in time rather than assumed at the steady state.

import (
	"errors"
	"fmt"
	"math"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/telemetry"
)

// DemandPhase is one piece of a workload demand trace: Steps
// integration steps at Scale× the spec's nominal power.
type DemandPhase struct {
	Name  string
	Scale float64
	Steps int
}

// DTMConfig tunes the controller. The zero value is the paper-shaped
// default: 125 °C limit, 5 °C recovery hysteresis, 0.5× throttle.
type DTMConfig struct {
	// LimitC is the thermal limit (°C); 0 → 125.
	LimitC float64
	// HysteresisC is the recovery band: a throttled controller
	// re-engages full power only once the predicted peak falls below
	// LimitC−HysteresisC, preventing limit-cycle chatter; 0 → 5.
	HysteresisC float64
	// ThrottleScale multiplies the demanded power while throttled;
	// 0 → 0.5. Must end up in (0, 1).
	ThrottleScale float64
	// Disabled runs the loop open — demand applied verbatim, no
	// throttling — as the violation baseline.
	Disabled bool
}

func (c DTMConfig) withDefaults() (DTMConfig, error) {
	if c.LimitC == 0 {
		c.LimitC = 125
	}
	if c.HysteresisC == 0 {
		c.HysteresisC = 5
	}
	if c.ThrottleScale == 0 {
		c.ThrottleScale = 0.5
	}
	if !(c.LimitC > 0) || math.IsInf(c.LimitC, 0) {
		return c, fmt.Errorf("sched: bad DTM limit %g", c.LimitC)
	}
	if !(c.HysteresisC >= 0) || math.IsInf(c.HysteresisC, 0) {
		return c, fmt.Errorf("sched: bad DTM hysteresis %g", c.HysteresisC)
	}
	if !(c.ThrottleScale > 0 && c.ThrottleScale < 1) {
		return c, fmt.Errorf("sched: bad DTM throttle scale %g (want 0<s<1)", c.ThrottleScale)
	}
	return c, nil
}

// DTMResult summarizes a closed-loop run.
type DTMResult struct {
	// PeakC is the highest temperature reached during the run (°C).
	PeakC float64
	// FinalC is the peak temperature at the end of the run.
	FinalC float64
	// Times, Peaks, and Throttled trace the run per step (s, °C,
	// controller state during the step).
	Times     []float64
	Peaks     []float64
	Throttled []bool
	// ThrottleEvents counts engagements (transitions into throttle).
	ThrottleEvents int
	// ThrottledSteps counts steps integrated at reduced power.
	ThrottledSteps int
	// ViolationSteps counts steps whose peak exceeded the limit;
	// ViolationTimeS is the same violation time in seconds.
	ViolationSteps int
	ViolationTimeS float64
}

// SimulateDTM integrates the demand trace through the spec's stack
// with the DTM controller in the loop. Before each step the controller
// extrapolates the peak one step ahead (linear, from the last two
// samples); a prediction at or above the limit engages the throttle
// (power × ThrottleScale), and a prediction below the hysteresis band
// releases it. Throttle engagements and limit-violation steps are
// counted on the result and mirrored to opts.Telemetry under
// CounterThrottleEvents / CounterViolationSteps.
//
// The loop is deterministic for a fixed Workers count: the controller
// reads only solver output, so a run is a pure function of
// (spec, demand, dt, cfg, opts).
func SimulateDTM(spec *stack.Spec, demand []DemandPhase, dt float64, cfg DTMConfig, opts solver.Options) (*DTMResult, error) {
	if spec == nil {
		return nil, errors.New("sched: nil spec")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if !(dt > 0) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("sched: bad dt %g", dt)
	}
	if len(demand) == 0 {
		return nil, errors.New("sched: empty demand trace")
	}
	for i, ph := range demand {
		if !(ph.Scale >= 0) || math.IsInf(ph.Scale, 0) {
			return nil, fmt.Errorf("sched: demand phase %d has bad scale %g", i, ph.Scale)
		}
		if ph.Steps < 1 {
			return nil, fmt.Errorf("sched: demand phase %d has bad step count %d", i, ph.Steps)
		}
	}

	p, _, err := spec.Build()
	if err != nil {
		return nil, err
	}
	baseQ := append([]float64(nil), p.Q...)
	amb := spec.Sink.Ambient()
	init := make([]float64, len(p.Q))
	for i := range init {
		init[i] = amb
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.Precond == solver.Jacobi {
		opts.Precond = solver.ZLine
	}
	tr, err := solver.NewTransient(p, init, opts)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	scaled := make([]float64, len(baseQ))
	applied := math.NaN() // force the first SetSources
	apply := func(scale float64) error {
		if scale == applied {
			return nil
		}
		for c := range baseQ {
			scaled[c] = baseQ[c] * scale
		}
		if err := tr.SetSources(scaled); err != nil {
			return err
		}
		applied = scale
		return nil
	}

	out := &DTMResult{}
	ambC := amb - 273.15
	prevC, lastC := ambC, ambC
	throttled := false
	for _, ph := range demand {
		for s := 0; s < ph.Steps; s++ {
			// One-step-ahead linear extrapolation of the peak. At the
			// very first step both samples are ambient, so the
			// prediction is ambient — the controller engages only on
			// observed trajectory, never on priors.
			predictedC := lastC + (lastC - prevC)
			if !cfg.Disabled {
				switch {
				case !throttled && predictedC >= cfg.LimitC:
					throttled = true
					out.ThrottleEvents++
					opts.Telemetry.Add(telemetry.CounterThrottleEvents, 1)
				case throttled && predictedC < cfg.LimitC-cfg.HysteresisC:
					throttled = false
				}
			}
			scale := ph.Scale
			if throttled {
				scale *= cfg.ThrottleScale
				out.ThrottledSteps++
			}
			if err := apply(scale); err != nil {
				return nil, err
			}
			if err := tr.Step(dt); err != nil {
				return nil, err
			}
			peakC := tr.MaxField() - 273.15
			prevC, lastC = lastC, peakC
			out.Times = append(out.Times, tr.Time())
			out.Peaks = append(out.Peaks, peakC)
			out.Throttled = append(out.Throttled, throttled)
			if peakC > out.PeakC {
				out.PeakC = peakC
			}
			if peakC > cfg.LimitC {
				out.ViolationSteps++
				out.ViolationTimeS += dt
				opts.Telemetry.Add(telemetry.CounterViolationSteps, 1)
			}
		}
	}
	out.FinalC = out.Peaks[len(out.Peaks)-1]
	return out, nil
}
