package specio

// Batch evaluation schema: POST /v1/evalbatch evaluates K power
// scenarios against one shared stack description. The base request
// fixes everything the thermal operator depends on — geometry, tier
// count, BEOL plan, sink, solver controls — and each item overrides
// only the power description, so sibling items are K right-hand
// sides against one assembled operator (solver.SolveSteadyBatch).
// Batch requests are steady-only: a transient evaluation is one
// trajectory, not a family of right-hand sides.

import (
	"encoding/json"
	"fmt"
)

// EvalMaxBatch bounds the items of one batch request: a batch is one
// bounded unit of work admitted under a single queue slot.
const EvalMaxBatch = 64

// BatchItem overrides the power description of the base request.
// Each field replaces the corresponding base field only when present
// (a zero item reuses the base power description verbatim):
//
//   - power_map_w_per_cm2 replaces the base stack's power map,
//   - uniform_power_w_per_cm2 replaces the base uniform density,
//   - power_blocks replaces the base block list (an explicit empty
//     list removes the base blocks).
//
// Geometry, materials, and solver controls cannot vary per item —
// that is what makes the batch one operator with K right-hand sides.
type BatchItem struct {
	PowerMap     []float64    `json:"power_map_w_per_cm2,omitempty"`
	UniformPower *float64     `json:"uniform_power_w_per_cm2,omitempty"`
	PowerBlocks  []PowerBlock `json:"power_blocks,omitempty"`
}

// EvalBatchRequest is the /v1/evalbatch request schema.
type EvalBatchRequest struct {
	Base  EvalRequest `json:"base"`
	Items []BatchItem `json:"items"`
}

// EvalBatchResponse is the /v1/evalbatch response schema: one
// EvalResponse per item, in item order. Per-item Cached/Coalesced
// report how each answer was produced (cache hit, intra-batch
// duplicate, or part of the coalesced batch solve).
type EvalBatchResponse struct {
	Mode  string         `json:"mode"`
	Items []EvalResponse `json:"items,omitempty"`
	Error string         `json:"error,omitempty"`
}

// ParseEvalBatch decodes a raw batch request, rejecting unknown
// fields.
func ParseEvalBatch(raw []byte) (EvalBatchRequest, error) {
	var req EvalBatchRequest
	if err := unmarshalStrictish(raw, &req); err != nil {
		return EvalBatchRequest{}, fmt.Errorf("specio: %w", err)
	}
	return req, nil
}

// Expand validates the batch envelope and returns the K derived
// per-item requests (base with the item's power overrides applied,
// not yet normalized). Each derived request is exactly what a client
// would have POSTed to /v1/eval for that scenario — the batch
// endpoint answers each item bitwise identically to that single
// request.
func (r EvalBatchRequest) Expand() ([]EvalRequest, error) {
	if len(r.Items) == 0 {
		return nil, fmt.Errorf("specio: batch has no items")
	}
	if len(r.Items) > EvalMaxBatch {
		return nil, fmt.Errorf("specio: batch has %d items, max %d", len(r.Items), EvalMaxBatch)
	}
	if r.Base.Transient != nil {
		return nil, fmt.Errorf("specio: batch requests are steady-only")
	}
	if r.Base.Fidelity == FidelityRC {
		// The batch path exists to amortize one assembled operator over
		// K iterative solves; the rc tier already answers each item in
		// microseconds, so batching it buys nothing — keep the two
		// admission paths orthogonal.
		return nil, fmt.Errorf("specio: batch requests are full-fidelity only")
	}
	out := make([]EvalRequest, len(r.Items))
	for i, it := range r.Items {
		d := r.Base
		if it.PowerMap != nil {
			d.Stack.PowerMap = it.PowerMap
		}
		if it.UniformPower != nil {
			d.Stack.UniformPower = *it.UniformPower
		}
		if it.PowerBlocks != nil {
			d.PowerBlocks = it.PowerBlocks
		}
		out[i] = d
	}
	return out, nil
}

// MarshalEvalBatch renders a batch request as indented JSON.
func MarshalEvalBatch(r EvalBatchRequest) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExampleEvalBatch returns a ready-to-POST batch: the example stack
// evaluated under three hotspot scenarios.
func ExampleEvalBatch() EvalBatchRequest {
	base := ExampleEval()
	return EvalBatchRequest{
		Base: base,
		Items: []BatchItem{
			{}, // the base scenario itself
			{PowerBlocks: []PowerBlock{{X0: 2, Y0: 2, X1: 6, Y1: 6, DensityWPerCm2: 60}}},
			{PowerBlocks: []PowerBlock{{X0: 10, Y0: 10, X1: 14, Y1: 14, DensityWPerCm2: 80}}},
		},
	}
}
