package specio

// Evaluation-service schema: the request/response JSON spoken by
// cmd/thermserve (internal/serve). A request wraps the existing stack
// schema with optional rectangular power blocks, solver controls, and
// an optional transient section; the response carries peak/mean
// temperature, the per-tier profile, and cache/coalescing telemetry.
//
// Normalization contract (the cache-key foundation, see DESIGN.md §9):
// Normalize applies every default explicitly and rasterizes power
// blocks into the power map, so requests that describe the same
// physical problem — reordered blocks, omitted-vs-explicit defaults,
// jacobi-vs-zline preconditioner — normalize to the same value and
// therefore hash to the same content address.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/telemetry"
)

// PowerBlock paints a rectangle of extra power density onto the base
// power map: cells [X0,X1)×[Y0,Y1), additive W/cm². Blocks are
// order-independent by construction (addition commutes), which the
// canonical-hash property tests pin down.
type PowerBlock struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
	// DensityWPerCm2 adds to every covered cell of every tier map.
	DensityWPerCm2 float64 `json:"w_per_cm2"`
}

// SolverJSON carries the per-request solver controls. Zero values
// select the service defaults (zline, 1e-7, 100000). TimeoutMS bounds
// the solve wall-clock; it shapes scheduling, not the solution, so it
// is excluded from the cache key.
type SolverJSON struct {
	Precond string  `json:"precond,omitempty"`
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	// Precision selects the preconditioner arithmetic tier: "f32", or
	// "f64" (the default — also accepted as "float64"/"float32"). The
	// canonical form of the default is the empty string, so requests
	// predating the field keep their content addresses.
	Precision string `json:"precision,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// TransientJSON selects a transient evaluation: Steps backward-Euler
// steps of DtS seconds from a uniform sink-ambient initial field.
type TransientJSON struct {
	DtS   float64 `json:"dt_s"`
	Steps int     `json:"steps"`
}

// Fidelity tiers of the evaluation ladder. FidelityFull is the exact
// FVM solve; FidelityRC is the certified reduced-order (aggregated
// RC network) tier — ~100× cheaper, answers carry a certified error
// bound instead of an iteration residual.
const (
	FidelityFull = "full"
	FidelityRC   = "rc"
)

// EvalRequest is the thermserve request schema.
type EvalRequest struct {
	Stack       StackJSON      `json:"stack"`
	PowerBlocks []PowerBlock   `json:"power_blocks,omitempty"`
	Solver      SolverJSON     `json:"solver"`
	Transient   *TransientJSON `json:"transient,omitempty"`
	// Fidelity selects the ladder tier: "full" (default) or "rc".
	Fidelity string `json:"fidelity,omitempty"`
}

// TierTemps is one tier's slice of the temperature profile.
type TierTemps struct {
	Tier  int             `json:"tier"`
	MaxT  telemetry.Float `json:"max_t_k"`
	MeanT telemetry.Float `json:"mean_t_k"`
}

// EvalResponse is the thermserve response schema. Temperature fields
// use telemetry.Float so a diverged solve's NaN/Inf marshals as JSON
// null — the same convention as the CLIs' -report output.
type EvalResponse struct {
	// Key is the canonical content address of the normalized problem.
	Key  string `json:"key"`
	Mode string `json:"mode"` // "steady" or "transient"
	// PeakT/MeanT are the domain peak and volume-weighted mean (K).
	PeakT      telemetry.Float `json:"peak_t_k"`
	MeanT      telemetry.Float `json:"mean_t_k"`
	Tiers      []TierTemps     `json:"tiers,omitempty"`
	Iterations int             `json:"iterations"`
	Residual   telemetry.Float `json:"residual"`
	// Cached/Coalesced/WarmStart report how the answer was produced:
	// from the content-addressed cache, by piggybacking on an identical
	// in-flight solve, or by a fresh solve seeded from a neighboring
	// solution. They never affect the numbers.
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
	WarmStart bool   `json:"warm_start"`
	WallNS    int64  `json:"wall_ns"`
	Error     string `json:"error,omitempty"`
	// Fidelity marks reduced-order answers ("rc"); full-fidelity
	// responses omit it. BoundK is the rc tier's certified error bound
	// on PeakT (K): |peak_full − peak_rc| ≤ BoundK, guaranteed, not
	// estimated. For rc answers Residual carries the relative defect
	// ‖b−A·T‖/‖b‖ and Iterations is 0 (the reduced solve is direct).
	Fidelity string          `json:"fidelity,omitempty"`
	BoundK   telemetry.Float `json:"bound_k,omitempty"`
}

// MarshalEval renders a request as indented JSON.
func MarshalEval(r EvalRequest) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseEval decodes a raw request.
func ParseEval(raw []byte) (EvalRequest, error) {
	var req EvalRequest
	if err := unmarshalStrictish(raw, &req); err != nil {
		return EvalRequest{}, fmt.Errorf("specio: %w", err)
	}
	return req, nil
}

// ExampleEval returns a ready-to-POST request: the example stack with
// one hot block over its center.
func ExampleEval() EvalRequest {
	sj := Example()
	sj.Tiers = 4
	return EvalRequest{
		Stack: sj,
		PowerBlocks: []PowerBlock{
			{X0: 6, Y0: 6, X1: 10, Y1: 10, DensityWPerCm2: 40},
		},
		Solver: SolverJSON{Precond: "multigrid", TimeoutMS: 30000},
	}
}

// evalDefaults are the service-side solver defaults, matching the
// thermsim CLI so a spec evaluates identically over HTTP and locally.
const (
	evalDefaultTol     = 1e-7
	evalDefaultMaxIter = 100000
	// EvalMaxSteps bounds transient requests: a request is one
	// bounded unit of work, not an open-ended simulation.
	EvalMaxSteps = 10000
)

// Normalize validates the request and returns its canonical form:
// solver defaults made explicit, the jacobi→zline upgrade applied
// (matching stack.Solve), and power blocks rasterized into an
// explicit per-map power map with UniformPower folded in. Two
// requests describing the same problem normalize to equal values;
// Normalize is idempotent.
func (r EvalRequest) Normalize() (EvalRequest, error) {
	out := r
	s := &out.Solver
	switch s.Precond {
	case "":
		s.Precond = solver.ZLine.String()
	default:
		pc, err := solver.ParsePreconditioner(s.Precond)
		if err != nil {
			return EvalRequest{}, fmt.Errorf("specio: %w", err)
		}
		// Plain Jacobi is never right for a chip stack; stack.Solve
		// upgrades it, so the canonical form does too.
		if pc == solver.Jacobi {
			pc = solver.ZLine
		}
		s.Precond = pc.String()
	}
	prec, err := solver.ParsePrecision(s.Precision)
	if err != nil {
		return EvalRequest{}, fmt.Errorf("specio: %w", err)
	}
	// Canonical F64 is the empty string: requests written before the
	// precision field existed must keep hashing to the same address.
	if prec == solver.F64 {
		s.Precision = ""
	} else {
		s.Precision = prec.String()
	}
	if s.Tol == 0 {
		s.Tol = evalDefaultTol
	}
	if !(s.Tol > 0) || math.IsInf(s.Tol, 0) {
		return EvalRequest{}, fmt.Errorf("specio: bad solver tol %g", s.Tol)
	}
	if s.MaxIter == 0 {
		s.MaxIter = evalDefaultMaxIter
	}
	if s.MaxIter < 0 {
		return EvalRequest{}, fmt.Errorf("specio: negative max_iter %d", s.MaxIter)
	}
	if s.TimeoutMS < 0 {
		return EvalRequest{}, fmt.Errorf("specio: negative timeout_ms %d", s.TimeoutMS)
	}
	if out.Transient != nil {
		tr := *out.Transient
		if !(tr.DtS > 0) || math.IsInf(tr.DtS, 0) {
			return EvalRequest{}, fmt.Errorf("specio: bad transient dt_s %g", tr.DtS)
		}
		if tr.Steps < 1 || tr.Steps > EvalMaxSteps {
			return EvalRequest{}, fmt.Errorf("specio: transient steps %d outside [1, %d]", tr.Steps, EvalMaxSteps)
		}
		out.Transient = &tr
	}
	switch out.Fidelity {
	case "":
		out.Fidelity = FidelityFull
	case FidelityFull, FidelityRC:
	default:
		return EvalRequest{}, fmt.Errorf("specio: unknown fidelity %q (want %q or %q)", out.Fidelity, FidelityFull, FidelityRC)
	}
	if out.Fidelity == FidelityRC && out.Transient != nil {
		return EvalRequest{}, fmt.Errorf("specio: fidelity %q is steady-state only", FidelityRC)
	}
	if out.Stack.BEOL == "" {
		out.Stack.BEOL = "conventional"
	}
	if out.Stack.Sink == "" {
		out.Stack.Sink = "twophase"
	}
	if len(out.PowerBlocks) == 0 {
		return out, nil
	}
	nx, ny := out.Stack.NX, out.Stack.NY
	if nx <= 0 || ny <= 0 {
		return EvalRequest{}, fmt.Errorf("specio: bad grid %dx%d", nx, ny)
	}
	pm := make([]float64, nx*ny)
	switch {
	case len(out.Stack.PowerMap) == len(pm):
		copy(pm, out.Stack.PowerMap)
	case len(out.Stack.PowerMap) == 0:
		for i := range pm {
			pm[i] = out.Stack.UniformPower
		}
	default:
		return EvalRequest{}, fmt.Errorf("specio: power map has %d cells, want %d", len(out.Stack.PowerMap), nx*ny)
	}
	for bi, b := range out.PowerBlocks {
		if b.X0 < 0 || b.Y0 < 0 || b.X1 > nx || b.Y1 > ny || b.X0 >= b.X1 || b.Y0 >= b.Y1 {
			return EvalRequest{}, fmt.Errorf("specio: power block %d [%d,%d)x[%d,%d) outside grid %dx%d",
				bi, b.X0, b.X1, b.Y0, b.Y1, nx, ny)
		}
		if !(b.DensityWPerCm2 >= 0) || math.IsInf(b.DensityWPerCm2, 0) {
			return EvalRequest{}, fmt.Errorf("specio: power block %d has bad density %g", bi, b.DensityWPerCm2)
		}
		for j := b.Y0; j < b.Y1; j++ {
			for i := b.X0; i < b.X1; i++ {
				pm[j*nx+i] += b.DensityWPerCm2
			}
		}
	}
	out.Stack.PowerMap = pm
	out.Stack.UniformPower = 0
	out.PowerBlocks = nil
	return out, nil
}

// Eval is a fully built, solvable evaluation: the normalized request
// plus the assembled problem, its layout, and the resolved solver
// controls. internal/serve hashes Problem + the option fields below
// into the cache key.
type Eval struct {
	Req     EvalRequest // normalized
	Spec    *stack.Spec
	Problem *solver.Problem
	Layout  *stack.Layout
	Precond solver.Preconditioner
	// Precision is the preconditioner arithmetic tier; part of the
	// cache key (the f32 tier converges to the same tolerance but via
	// different iterates, so the two tiers are distinct answers).
	Precision solver.Precision
	Tol       float64
	MaxIter   int
	// Timeout is the client-requested deadline (0 = server default).
	// Deliberately not part of the cache key.
	Timeout time.Duration
}

// Steady reports whether the request is a steady-state solve.
func (e *Eval) Steady() bool { return e.Req.Transient == nil }

// RC reports whether the request selects the reduced-order tier.
func (e *Eval) RC() bool { return e.Req.Fidelity == FidelityRC }

// Mode returns the response mode string.
func (e *Eval) Mode() string {
	if e.Steady() {
		return "steady"
	}
	return "transient"
}

// InitialField returns the transient initial condition: a uniform
// field at the sink ambient temperature.
func (e *Eval) InitialField() []float64 {
	t0 := make([]float64, e.Problem.Grid.NumCells())
	amb := e.Spec.Sink.Ambient()
	for i := range t0 {
		t0[i] = amb
	}
	return t0
}

// BuildEval normalizes and validates a request and assembles the
// solver problem.
func BuildEval(r EvalRequest) (*Eval, error) {
	norm, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	spec, err := Build(norm.Stack)
	if err != nil {
		return nil, err
	}
	p, lay, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	pc, err := solver.ParsePreconditioner(norm.Solver.Precond)
	if err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	prec, err := solver.ParsePrecision(norm.Solver.Precision)
	if err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	return &Eval{
		Req:       norm,
		Spec:      spec,
		Problem:   p,
		Layout:    lay,
		Precond:   pc,
		Precision: prec,
		Tol:       norm.Solver.Tol,
		MaxIter:   norm.Solver.MaxIter,
		Timeout:   time.Duration(norm.Solver.TimeoutMS) * time.Millisecond,
	}, nil
}

// CloneForPower builds the Eval of a request that differs from e at
// most in its power fields (uniform power, power map, power blocks —
// same family), reusing e's assembled geometry: the mesh, material,
// boundary, and layout arrays are shared, and only the source field
// is validated and painted. Bitwise identical to BuildEval(r) —
// pinned by TestCloneForPower — at a fraction of the cost, which is
// what lets a serving cold-miss storm over one family skip per-request
// problem assembly. The caller is responsible for the same-family
// precondition; a request that violates it gets a problem whose
// non-source fields are e's, not its own.
func (e *Eval) CloneForPower(r EvalRequest) (*Eval, error) {
	norm, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	spec, err := Build(norm.Stack)
	if err != nil {
		return nil, err
	}
	p := e.Problem.CloneBlankSources()
	if err := spec.PaintSources(p, e.Layout); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	ne := *e
	ne.Req = norm
	ne.Spec = spec
	ne.Problem = p
	// Timeout is scheduling-only and excluded from family addressing,
	// so it can differ within a family.
	ne.Timeout = time.Duration(norm.Solver.TimeoutMS) * time.Millisecond
	return &ne, nil
}

// TierProfile computes the per-tier device-layer profile of a solved
// field: max and volume-weighted mean over each tier's device layers.
func (e *Eval) TierProfile(field []float64) []TierTemps {
	g := e.Layout.Grid
	out := make([]TierTemps, len(e.Layout.DeviceLayers))
	for t, layers := range e.Layout.DeviceLayers {
		maxT := math.Inf(-1)
		var sum, vol float64
		for _, k := range layers {
			for j := 0; j < g.NY(); j++ {
				for i := 0; i < g.NX(); i++ {
					v := g.Volume(i, j, k)
					x := field[g.Index(i, j, k)]
					if x > maxT {
						maxT = x
					}
					sum += x * v
					vol += v
				}
			}
		}
		mean := math.NaN()
		if vol > 0 {
			mean = sum / vol
		}
		out[t] = TierTemps{Tier: t, MaxT: telemetry.Float(maxT), MeanT: telemetry.Float(mean)}
	}
	return out
}

// FieldStats returns the domain peak and volume-weighted mean (K).
func (e *Eval) FieldStats(field []float64) (peak, mean float64) {
	g := e.Layout.Grid
	peak = math.Inf(-1)
	var sum, vol float64
	for k := 0; k < g.NZ(); k++ {
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				v := g.Volume(i, j, k)
				x := field[g.Index(i, j, k)]
				if x > peak {
					peak = x
				}
				sum += x * v
				vol += v
			}
		}
	}
	return peak, sum / vol
}

// unmarshalStrictish decodes JSON, rejecting unknown fields — a
// mistyped field name in a request should be a 400, not a silently
// ignored knob.
func unmarshalStrictish(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
