package specio

// Peer cache wire schema: the JSON spoken between thermserve nodes in
// cluster mode (internal/cluster, DESIGN.md §14). One entry carries a
// content-addressed solve result — the response template plus the
// exact solved field — between the node that ran the solve and the
// node the consistent-hash ring makes its owner:
//
//	GET /v1/peer/cache/{key}  → 200 PeerCacheEntry | 404
//	PUT /v1/peer/cache/{key}  ← PeerCacheEntry (fill), 204
//	PUT /v1/peer/family       ← PeerFamilyAnnounce (gossip), 204
//
// The field travels as base64 of its little-endian IEEE-754 bits
// (the trace checkpoint convention), so a fetched entry is bitwise
// identical to the solve that produced it — the foundation of the
// determinism-across-nodes contract: a response served through any
// node of the ring carries exactly the bits a single-node solve of
// the same request would have produced.

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
)

// peerKeyRE is the shape of a content address on the wire: 64
// lowercase hex characters (SHA-256).
var peerKeyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidPeerKey reports whether key is a well-formed content address.
// Peer endpoints reject anything else before touching the cache, so a
// malformed or hostile path segment can never alias a real entry.
func ValidPeerKey(key string) bool { return peerKeyRE.MatchString(key) }

// PeerCacheEntry is the wire form of one content-addressed cache
// entry.
type PeerCacheEntry struct {
	// Key is the entry's content address; it must equal the {key}
	// path segment it is stored or fetched under.
	Key string `json:"key"`
	// FamilyKey is the warm-start family address for entries eligible
	// for the family pool (steady, full fidelity); empty otherwise.
	FamilyKey string `json:"family_key,omitempty"`
	// Resp is the response template. Routing fields
	// (Cached/Coalesced/WallNS) are stamped per reply by the serving
	// node; every numeric field is forwarded verbatim (float64
	// round-trips JSON exactly).
	Resp EvalResponse `json:"response"`
	// State is the solved temperature field: base64 of the
	// little-endian IEEE-754 bits in cell order (EncodeTraceState).
	State string `json:"state"`
}

// Validate checks an entry against the address it travels under:
// well-formed keys, matching path/body/response addresses, and a
// decodable, finite state field. It returns the decoded field so
// callers do not decode twice.
func (e *PeerCacheEntry) Validate(key string) ([]float64, error) {
	if !ValidPeerKey(key) {
		return nil, fmt.Errorf("specio: bad peer cache key %q", key)
	}
	if e.Key != key {
		return nil, fmt.Errorf("specio: peer entry key %q does not match address %q", e.Key, key)
	}
	if e.Resp.Key != key {
		return nil, fmt.Errorf("specio: peer entry response key %q does not match address %q", e.Resp.Key, key)
	}
	if e.FamilyKey != "" && !ValidPeerKey(e.FamilyKey) {
		return nil, fmt.Errorf("specio: bad peer family key %q", e.FamilyKey)
	}
	t, err := DecodeField(e.State)
	if err != nil {
		return nil, fmt.Errorf("specio: peer entry state: %w", err)
	}
	return t, nil
}

// ParsePeerEntry decodes and validates a wire entry fetched or filled
// under key, returning the entry and its decoded field.
func ParsePeerEntry(raw []byte, key string) (*PeerCacheEntry, []float64, error) {
	var e PeerCacheEntry
	if err := unmarshalStrictish(raw, &e); err != nil {
		return nil, nil, fmt.Errorf("specio: %w", err)
	}
	t, err := e.Validate(key)
	if err != nil {
		return nil, nil, err
	}
	return &e, t, nil
}

// MarshalPeerEntry renders an entry for the wire (compact: peer
// traffic is node-to-node, not human-facing).
func MarshalPeerEntry(e *PeerCacheEntry) ([]byte, error) {
	return json.Marshal(e)
}

// PeerFamilyAnnounce is the gossip message sent best-effort to every
// peer after a fill: "a warm-start seed for this family lives at this
// key on this node". Receivers store the pointer in a bounded index
// and resolve it through the regular peer-cache GET when a near-miss
// solve wants the seed.
type PeerFamilyAnnounce struct {
	FamilyKey string `json:"family_key"`
	Key       string `json:"key"`
	// Node is the announcing node's ring ID — where the entry can be
	// fetched from.
	Node string `json:"node"`
}

// Validate checks the announce's addresses.
func (a PeerFamilyAnnounce) Validate() error {
	if !ValidPeerKey(a.FamilyKey) {
		return fmt.Errorf("specio: bad family key %q", a.FamilyKey)
	}
	if !ValidPeerKey(a.Key) {
		return fmt.Errorf("specio: bad announce key %q", a.Key)
	}
	if a.Node == "" {
		return fmt.Errorf("specio: announce without a node")
	}
	return nil
}

// MarshalPeerAnnounce renders a gossip message for the wire.
func MarshalPeerAnnounce(a PeerFamilyAnnounce) ([]byte, error) {
	return json.Marshal(a)
}

// ParsePeerAnnounce decodes and validates a gossip message.
func ParsePeerAnnounce(raw []byte) (PeerFamilyAnnounce, error) {
	var a PeerFamilyAnnounce
	if err := unmarshalStrictish(raw, &a); err != nil {
		return PeerFamilyAnnounce{}, fmt.Errorf("specio: %w", err)
	}
	if err := a.Validate(); err != nil {
		return PeerFamilyAnnounce{}, err
	}
	return a, nil
}

// DecodeField deserializes a base64 field without a prescribed cell
// count (the trace variant, DecodeTraceState, checks against a known
// grid; peer entries are validated against the grid only when a node
// uses the field, because the content address already fixes the
// problem — and therefore the cell count — on both sides). Non-finite
// temperatures are rejected: a NaN smuggled through the peer protocol
// must never seed a warm start.
func DecodeField(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bad state encoding: %w", err)
	}
	if len(buf) == 0 || len(buf)%8 != 0 {
		return nil, fmt.Errorf("state has %d bytes, not a positive multiple of 8", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("state has non-finite temperature at cell %d", i)
		}
		out[i] = v
	}
	return out, nil
}
