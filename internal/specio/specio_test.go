package specio

import (
	"strings"
	"testing"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/units"
)

func TestExampleRoundTrip(t *testing.T) {
	raw, err := Marshal(Example())
	if err != nil {
		t.Fatal(err)
	}
	sj, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Tiers != 12 || sj.BEOL != "scaffolded" || sj.PillarCover != 0.10 {
		t.Errorf("round trip mutated spec: %+v", sj)
	}
	spec, err := Build(sj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// The example is the paper's headline point: under 125 °C.
	if c := units.KelvinToCelsius(res.MaxT()); c > 125 || c < 100 {
		t.Errorf("example spec solves to %g°C", c)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildVariants(t *testing.T) {
	for _, beol := range []string{"conventional", "scaffolded", "paper-conventional", "paper-scaffolded", ""} {
		sj := Example()
		sj.BEOL = beol
		if _, err := Build(sj); err != nil {
			t.Errorf("beol %q rejected: %v", beol, err)
		}
	}
	for _, sink := range []string{"twophase", "microfluidic", "coldplate", "microchannel", ""} {
		sj := Example()
		sj.Sink = sink
		if _, err := Build(sj); err != nil {
			t.Errorf("sink %q rejected: %v", sink, err)
		}
	}
}

func TestBuildExplicitPowerMap(t *testing.T) {
	sj := Example()
	sj.NX, sj.NY = 4, 4
	sj.PowerMap = make([]float64, 16)
	for i := range sj.PowerMap {
		sj.PowerMap[i] = float64(i)
	}
	spec, err := Build(sj)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PowerMaps[0][15] != units.WPerCm2ToWPerM2(15) {
		t.Error("power map not converted")
	}
}

func TestBuildRejections(t *testing.T) {
	cases := []func(*StackJSON){
		func(s *StackJSON) { s.NX = 0 },
		func(s *StackJSON) { s.BEOL = "unobtainium" },
		func(s *StackJSON) { s.Sink = "peltier" },
		func(s *StackJSON) { s.PowerMap = []float64{1, 2, 3} },
		func(s *StackJSON) { s.UniformPower = -5 },
		func(s *StackJSON) { s.PillarCover = 1.5 },
		func(s *StackJSON) { s.Tiers = 0 },
		func(s *StackJSON) {
			s.NX, s.NY = 2, 2
			s.PowerMap = []float64{1, 2, 3, -4}
		},
	}
	for i, mutate := range cases {
		sj := Example()
		mutate(&sj)
		if _, err := Build(sj); err == nil {
			t.Errorf("case %d accepted", i)
		} else if !strings.Contains(err.Error(), "specio") && !strings.Contains(err.Error(), "stack") {
			t.Errorf("case %d: unhelpful error %v", i, err)
		}
	}
}
