package specio

// Trace schema suite: normalization canonical form + idempotence,
// hostile-request validation, exact state round-trip, and segment
// source semantics against the single-shot eval path. FuzzTraceRequest
// (run by `make fuzz-short`) hammers the decoder/normalizer with
// hostile segment counts, degenerate dt, and corrupt resume state.

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func traceStack() StackJSON {
	return StackJSON{
		DieWUm: 200, DieHUm: 200,
		Tiers: 2, NX: 8, NY: 8,
		UniformPower: 20,
		BEOL:         "scaffolded",
		PillarCover:  0.1,
		Sink:         "twophase",
	}
}

func validTrace() TraceRequest {
	idle := 0.25
	return TraceRequest{
		Stack:  traceStack(),
		Solver: SolverJSON{Precond: "zline"},
		Segments: []TraceSegmentJSON{
			{DtS: 1e-4, Steps: 3},
			{DtS: 1e-4, Steps: 2, PowerScale: &idle},
			{DtS: 5e-5, Steps: 2, PowerBlocks: []PowerBlock{{X0: 1, Y0: 1, X1: 4, Y1: 4, DensityWPerCm2: 30}}},
		},
	}
}

// TestTraceNormalizeCanonical: defaults become explicit (solver
// controls via the shared eval normalization, power_scale pinned to
// 1) and Normalize is idempotent.
func TestTraceNormalizeCanonical(t *testing.T) {
	norm, err := validTrace().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Solver.Tol == 0 || norm.Solver.MaxIter == 0 {
		t.Fatalf("solver defaults not explicit: %+v", norm.Solver)
	}
	for i, seg := range norm.Segments {
		if seg.PowerScale == nil {
			t.Fatalf("segment %d power_scale not canonicalized", i)
		}
	}
	if *norm.Segments[0].PowerScale != 1 || *norm.Segments[1].PowerScale != 0.25 {
		t.Fatalf("power_scale canonical values wrong: %v %v", *norm.Segments[0].PowerScale, *norm.Segments[1].PowerScale)
	}
	again, err := norm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm, again) {
		t.Fatalf("Normalize is not idempotent:\n%+v\n%+v", norm, again)
	}
}

// TestTraceNormalizeRejects covers the hostile-request surface.
func TestTraceNormalizeRejects(t *testing.T) {
	mut := func(f func(*TraceRequest)) TraceRequest {
		r := validTrace()
		f(&r)
		return r
	}
	neg := -1.0
	cases := []struct {
		name string
		req  TraceRequest
		want string
	}{
		{"no-segments", mut(func(r *TraceRequest) { r.Segments = nil }), "no segments"},
		{"too-many-segments", mut(func(r *TraceRequest) {
			r.Segments = make([]TraceSegmentJSON, TraceMaxSegments+1)
			for i := range r.Segments {
				r.Segments[i] = TraceSegmentJSON{DtS: 1e-4, Steps: 1}
			}
		}), "max 256"},
		{"zero-dt", mut(func(r *TraceRequest) { r.Segments[0].DtS = 0 }), "bad dt_s"},
		{"negative-dt", mut(func(r *TraceRequest) { r.Segments[1].DtS = -1 }), "bad dt_s"},
		{"nan-dt", mut(func(r *TraceRequest) { r.Segments[0].DtS = math.NaN() }), "bad dt_s"},
		{"zero-steps", mut(func(r *TraceRequest) { r.Segments[0].Steps = 0 }), "bad steps"},
		{"negative-steps", mut(func(r *TraceRequest) { r.Segments[2].Steps = -5 }), "bad steps"},
		{"too-many-steps", mut(func(r *TraceRequest) { r.Segments[0].Steps = TraceMaxTotalSteps + 1 }), "total steps"},
		{"negative-scale", mut(func(r *TraceRequest) { r.Segments[0].PowerScale = &neg }), "bad power_scale"},
		{"block-outside", mut(func(r *TraceRequest) { r.Segments[2].PowerBlocks[0].X1 = 99 }), "outside grid"},
		{"block-inverted", mut(func(r *TraceRequest) {
			r.Segments[2].PowerBlocks[0].X0 = 5
			r.Segments[2].PowerBlocks[0].X1 = 2
		}), "outside grid"},
		{"block-bad-density", mut(func(r *TraceRequest) { r.Segments[2].PowerBlocks[0].DensityWPerCm2 = math.Inf(1) }), "bad density"},
		{"resume-out-of-range", mut(func(r *TraceRequest) {
			r.ResumeFrom = &TraceCheckpointJSON{Segment: 9, State: "AA=="}
		}), "outside schedule"},
		{"resume-no-state", mut(func(r *TraceRequest) {
			r.ResumeFrom = &TraceCheckpointJSON{Segment: 1}
		}), "requires state"},
		{"resume-bad-time", mut(func(r *TraceRequest) {
			r.ResumeFrom = &TraceCheckpointJSON{Segment: 1, TimeS: -3, State: "AA=="}
		}), "bad time_s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.req.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestTraceStateRoundTrip: encode→decode is exact for adversarial bit
// patterns (denormals, −0, huge magnitudes).
func TestTraceStateRoundTrip(t *testing.T) {
	in := []float64{0, math.Copysign(0, -1), 1.5e-310, 373.15, 1e300, -2.7e-18, math.Pi}
	out, err := DecodeTraceState(EncodeTraceState(in), len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
			t.Fatalf("cell %d: %x -> %x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
	if _, err := DecodeTraceState("!!!", 1); err == nil {
		t.Fatal("bad base64 accepted")
	}
	if _, err := DecodeTraceState(EncodeTraceState(in), len(in)+1); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := DecodeTraceState(EncodeTraceState([]float64{math.NaN()}), 1); err == nil {
		t.Fatal("NaN state accepted")
	}
}

// TestBuildTraceSegmentSources pins segment power semantics: a
// default segment carries the base problem's exact sources, scale
// rescales the device-layer sources, and blocks add on top.
func TestBuildTraceSegmentSources(t *testing.T) {
	te, err := BuildTrace(validTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(te.Segments) != 3 {
		t.Fatalf("got %d segments", len(te.Segments))
	}
	baseQ := te.Base.Problem.Q
	seg0 := te.Segments[0].Q
	for c := range baseQ {
		if math.Float64bits(seg0[c]) != math.Float64bits(baseQ[c]) {
			t.Fatalf("default segment sources differ from base at cell %d", c)
		}
	}
	var sum0, sum1, sum2 float64
	for c := range baseQ {
		sum0 += seg0[c]
		sum1 += te.Segments[1].Q[c]
		sum2 += te.Segments[2].Q[c]
	}
	if math.Abs(sum1-0.25*sum0) > 1e-9*sum0 {
		t.Fatalf("scaled segment total %g, want %g", sum1, 0.25*sum0)
	}
	if sum2 <= sum0 {
		t.Fatalf("block segment total %g did not exceed base %g", sum2, sum0)
	}
}

// TestBuildTraceResume decodes resume state into a solver checkpoint.
func TestBuildTraceResume(t *testing.T) {
	req := validTrace()
	te, err := BuildTrace(req)
	if err != nil {
		t.Fatal(err)
	}
	n := te.Base.Problem.Grid.NumCells()
	field := make([]float64, n)
	for i := range field {
		field[i] = 300 + float64(i)*1e-3
	}
	req.ResumeFrom = &TraceCheckpointJSON{Segment: 1, TimeS: 3e-4, State: EncodeTraceState(field)}
	te2, err := BuildTrace(req)
	if err != nil {
		t.Fatal(err)
	}
	if te2.Resume == nil || te2.Resume.Segment != 1 || te2.Resume.Time != 3e-4 {
		t.Fatalf("resume checkpoint not built: %+v", te2.Resume)
	}
	for i := range field {
		if math.Float64bits(te2.Resume.T[i]) != math.Float64bits(field[i]) {
			t.Fatalf("resume state differs at cell %d", i)
		}
	}
	// Wrong-sized state is a 400-shaped error, not a panic.
	req.ResumeFrom.State = EncodeTraceState(field[:4])
	if _, err := BuildTrace(req); err == nil || !strings.Contains(err.Error(), "state has") {
		t.Fatalf("got %v, want state length error", err)
	}
}

// FuzzTraceRequest hammers the decode→normalize→build pipeline with
// hostile JSON: it must never panic, normalization must be
// idempotent, and anything that builds must have consistent segment
// counts.
func FuzzTraceRequest(f *testing.F) {
	seed := func(r TraceRequest) {
		raw, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed(validTrace())
	seed(ExampleTrace())
	hostile := validTrace()
	hostile.Segments[0].DtS = -1
	seed(hostile)
	overlap := validTrace()
	overlap.Segments[2].PowerBlocks = []PowerBlock{
		{X0: 0, Y0: 0, X1: 8, Y1: 8, DensityWPerCm2: 10},
		{X0: 2, Y0: 2, X1: 6, Y1: 6, DensityWPerCm2: 90},
	}
	seed(overlap)
	resume := validTrace()
	resume.ResumeFrom = &TraceCheckpointJSON{Segment: 1, TimeS: 1e-4, State: "not-base64!"}
	seed(resume)
	many := validTrace()
	many.Segments = make([]TraceSegmentJSON, 300)
	for i := range many.Segments {
		many.Segments[i] = TraceSegmentJSON{DtS: 1e-9, Steps: 1 << 20}
	}
	seed(many)
	f.Add([]byte(`{"segments":[{"dt_s":1e308,"steps":9999999999}]}`))
	f.Add([]byte(`{"stack":{"nx":-1,"ny":0},"segments":[{"dt_s":1,"steps":1}]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ParseTrace(raw)
		if err != nil {
			return
		}
		norm, err := req.Normalize()
		if err != nil {
			return
		}
		again, err := norm.Normalize()
		if err != nil {
			t.Fatalf("normalized form failed to re-normalize: %v", err)
		}
		if len(again.Segments) != len(norm.Segments) {
			t.Fatalf("re-normalize changed segment count %d -> %d", len(norm.Segments), len(again.Segments))
		}
		te, err := BuildTrace(norm)
		if err != nil {
			return
		}
		if len(te.Segments) != len(norm.Segments) {
			t.Fatalf("built %d segments from %d", len(te.Segments), len(norm.Segments))
		}
	})
}
