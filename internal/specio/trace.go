package specio

// Trace evaluation schema: POST /v1/evaltrace drives a power schedule
// through the transient solver and streams peak-T checkpoints back as
// Server-Sent Events while segments complete. Each segment re-paints
// the base power description (scale × base map, plus per-segment
// power blocks) for its share of the timeline, so a trace is the
// dynamic sibling of /v1/evalbatch: one assembled operator, K
// right-hand sides — ordered in time instead of independent.
//
// Checkpoints are resumable: a checkpoint event (with include_state)
// carries the exact temperature field base64-encoded from its IEEE-754
// bits, and a follow-up request presenting it as resume_from continues
// the trace bitwise identically to the uninterrupted run (the solver's
// checkpoint determinism contract, DESIGN.md §13).

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/telemetry"
)

const (
	// TraceMaxSegments bounds the segments of one trace request.
	TraceMaxSegments = 256
	// TraceMaxTotalSteps bounds the total backward-Euler steps of one
	// trace request — a request is one bounded unit of work.
	TraceMaxTotalSteps = EvalMaxSteps
)

// TraceSegmentJSON is one piece of the power schedule. The segment's
// power is always defined against the BASE request (never the
// previous segment): effective map = base map × power_scale, plus the
// segment's power_blocks painted on top. An all-default segment
// replays the base power unchanged.
type TraceSegmentJSON struct {
	DtS   float64 `json:"dt_s"`
	Steps int     `json:"steps"`
	// PowerScale multiplies the base power map for this segment.
	// Omitted (nil) means 1; the canonical form is explicit. Zero is
	// legal — an idle segment.
	PowerScale *float64 `json:"power_scale,omitempty"`
	// PowerBlocks paints additional density (additive W/cm²) onto the
	// scaled base map for this segment only.
	PowerBlocks []PowerBlock `json:"power_blocks,omitempty"`
}

// TraceCheckpointJSON is the wire form of a resume point: emitted in
// checkpoint events (state present only when the request set
// include_state) and accepted back as resume_from.
type TraceCheckpointJSON struct {
	// Segment counts fully integrated segments; resuming starts at
	// segments[segment].
	Segment int     `json:"segment"`
	TimeS   float64 `json:"time_s"`
	// PeakT is the maximum cell temperature observed at any step
	// boundary during the segment (K).
	PeakT telemetry.Float `json:"peak_t_k"`
	// State is the temperature field: base64 (std encoding) of the
	// little-endian IEEE-754 bits of each cell, in cell index order.
	// Exact by construction — resume is bitwise, not approximate.
	State string `json:"state,omitempty"`
}

// TraceRequest is the /v1/evaltrace request schema.
type TraceRequest struct {
	Stack       StackJSON          `json:"stack"`
	PowerBlocks []PowerBlock       `json:"power_blocks,omitempty"`
	Solver      SolverJSON         `json:"solver"`
	Segments    []TraceSegmentJSON `json:"segments"`
	// IncludeState asks for the serialized field in every checkpoint
	// event, enabling resume. Off by default — the field is the bulky
	// part of a checkpoint.
	IncludeState bool `json:"include_state,omitempty"`
	// ResumeFrom continues a previous run of the SAME stack and
	// schedule from one of its checkpoints (state required).
	ResumeFrom *TraceCheckpointJSON `json:"resume_from,omitempty"`
}

// Trace event types streamed over SSE.
const (
	// TraceEventCheckpoint is emitted as each segment completes.
	TraceEventCheckpoint = "checkpoint"
	// TraceEventDone terminates a successful stream.
	TraceEventDone = "done"
	// TraceEventError terminates a failed stream (solver error,
	// deadline expiry, shutdown) — always well-formed JSON, so a
	// client never has to parse a torn frame.
	TraceEventError = "error"
)

// TraceEvent is the JSON payload of one SSE frame.
type TraceEvent struct {
	// Segment counts fully integrated segments so far.
	Segment int `json:"segment"`
	// Segments is the schedule length (so clients can render progress).
	Segments int     `json:"segments"`
	TimeS    float64 `json:"time_s"`
	// PeakT: for checkpoint events, the segment's peak; for done, the
	// peak over the whole run.
	PeakT telemetry.Float `json:"peak_t_k"`
	// Checkpoint carries the resumable state on checkpoint events when
	// the request set include_state.
	Checkpoint *TraceCheckpointJSON `json:"checkpoint,omitempty"`
	// Steps (done only) counts integrated steps this run.
	Steps int `json:"steps,omitempty"`
	// WallNS (done/error) is the stream wall-clock.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Error (error events) is the failure description.
	Error string `json:"error,omitempty"`
}

// ParseTrace decodes a raw trace request, rejecting unknown fields.
func ParseTrace(raw []byte) (TraceRequest, error) {
	var req TraceRequest
	if err := unmarshalStrictish(raw, &req); err != nil {
		return TraceRequest{}, fmt.Errorf("specio: %w", err)
	}
	return req, nil
}

// MarshalTrace renders a trace request as indented JSON.
func MarshalTrace(r TraceRequest) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExampleTrace returns a ready-to-POST trace: the example stack under
// a burst/idle/burst power schedule with resumable checkpoints.
func ExampleTrace() TraceRequest {
	one, idle, burst := 1.0, 0.2, 1.8
	return TraceRequest{
		Stack:  Example(),
		Solver: SolverJSON{Precond: "multigrid", TimeoutMS: 60000},
		Segments: []TraceSegmentJSON{
			{DtS: 1e-4, Steps: 20, PowerScale: &burst},
			{DtS: 1e-4, Steps: 20, PowerScale: &idle},
			{DtS: 1e-4, Steps: 20, PowerScale: &one,
				PowerBlocks: []PowerBlock{{X0: 6, Y0: 6, X1: 10, Y1: 10, DensityWPerCm2: 40}}},
		},
		IncludeState: true,
	}
}

// Normalize validates the trace request and returns its canonical
// form: the embedded base request normalized exactly as /v1/eval
// would (defaults explicit, base power blocks rasterized), segment
// defaults made explicit, and the resume state checked against the
// grid. Idempotent.
func (r TraceRequest) Normalize() (TraceRequest, error) {
	base := EvalRequest{Stack: r.Stack, PowerBlocks: r.PowerBlocks, Solver: r.Solver}
	nb, err := base.Normalize()
	if err != nil {
		return TraceRequest{}, err
	}
	out := r
	out.Stack, out.PowerBlocks, out.Solver = nb.Stack, nb.PowerBlocks, nb.Solver
	if len(r.Segments) == 0 {
		return TraceRequest{}, fmt.Errorf("specio: trace has no segments")
	}
	if len(r.Segments) > TraceMaxSegments {
		return TraceRequest{}, fmt.Errorf("specio: trace has %d segments, max %d", len(r.Segments), TraceMaxSegments)
	}
	nx, ny := out.Stack.NX, out.Stack.NY
	total := 0
	segs := make([]TraceSegmentJSON, len(r.Segments))
	for i, seg := range r.Segments {
		if !(seg.DtS > 0) || math.IsInf(seg.DtS, 0) {
			return TraceRequest{}, fmt.Errorf("specio: trace segment %d has bad dt_s %g", i, seg.DtS)
		}
		if seg.Steps < 1 {
			return TraceRequest{}, fmt.Errorf("specio: trace segment %d has bad steps %d", i, seg.Steps)
		}
		total += seg.Steps
		if total > TraceMaxTotalSteps {
			return TraceRequest{}, fmt.Errorf("specio: trace exceeds %d total steps", TraceMaxTotalSteps)
		}
		scale := 1.0
		if seg.PowerScale != nil {
			scale = *seg.PowerScale
		}
		if !(scale >= 0) || math.IsInf(scale, 0) {
			return TraceRequest{}, fmt.Errorf("specio: trace segment %d has bad power_scale %g", i, scale)
		}
		for bi, b := range seg.PowerBlocks {
			if b.X0 < 0 || b.Y0 < 0 || b.X1 > nx || b.Y1 > ny || b.X0 >= b.X1 || b.Y0 >= b.Y1 {
				return TraceRequest{}, fmt.Errorf("specio: trace segment %d power block %d [%d,%d)x[%d,%d) outside grid %dx%d",
					i, bi, b.X0, b.X1, b.Y0, b.Y1, nx, ny)
			}
			if !(b.DensityWPerCm2 >= 0) || math.IsInf(b.DensityWPerCm2, 0) {
				return TraceRequest{}, fmt.Errorf("specio: trace segment %d power block %d has bad density %g", i, bi, b.DensityWPerCm2)
			}
		}
		norm := seg
		norm.PowerScale = &scale
		segs[i] = norm
	}
	out.Segments = segs
	if cp := r.ResumeFrom; cp != nil {
		c := *cp
		if c.Segment < 0 || c.Segment > len(segs) {
			return TraceRequest{}, fmt.Errorf("specio: resume_from segment %d outside schedule of %d segments", c.Segment, len(segs))
		}
		if !(c.TimeS >= 0) || math.IsInf(c.TimeS, 0) {
			return TraceRequest{}, fmt.Errorf("specio: resume_from has bad time_s %g", c.TimeS)
		}
		if c.State == "" {
			return TraceRequest{}, fmt.Errorf("specio: resume_from requires state")
		}
		out.ResumeFrom = &c
	}
	return out, nil
}

// TraceEval is a fully built, runnable trace: the base Eval (problem,
// layout, solver controls) plus the per-segment solver schedule and
// the decoded resume checkpoint.
type TraceEval struct {
	Req      TraceRequest // normalized
	Base     *Eval
	Segments []solver.TraceSegment
	Resume   *solver.TraceCheckpoint
}

// BuildTrace normalizes and validates a trace request and assembles
// the solver problem plus the per-segment source fields. Each
// segment's field is built exactly as a /v1/eval request with that
// segment's power description would be — scale applied to the
// normalized base map, segment blocks painted on top — so segment
// semantics never drift from the single-shot endpoint's.
func BuildTrace(r TraceRequest) (*TraceEval, error) {
	norm, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	base := EvalRequest{Stack: norm.Stack, PowerBlocks: norm.PowerBlocks, Solver: norm.Solver}
	bev, err := BuildEval(base)
	if err != nil {
		return nil, err
	}
	n := bev.Problem.Grid.NumCells()
	te := &TraceEval{Req: norm, Base: bev, Segments: make([]solver.TraceSegment, len(norm.Segments))}
	for i, seg := range norm.Segments {
		q, err := segmentSources(bev, norm.Stack, seg)
		if err != nil {
			return nil, fmt.Errorf("specio: trace segment %d: %w", i, err)
		}
		te.Segments[i] = solver.TraceSegment{Dt: seg.DtS, Steps: seg.Steps, Q: q}
	}
	if cp := norm.ResumeFrom; cp != nil {
		field, err := DecodeTraceState(cp.State, n)
		if err != nil {
			return nil, fmt.Errorf("specio: resume_from: %w", err)
		}
		te.Resume = &solver.TraceCheckpoint{
			Segment: cp.Segment,
			Time:    cp.TimeS,
			PeakT:   float64(cp.PeakT),
			T:       field,
		}
	}
	return te, nil
}

// segmentSources builds one segment's volumetric source field: the
// normalized base power map scaled and repainted, run through the
// same stack build as the base problem. Geometry and materials are
// fixed by the base request, so the built problems differ only in Q.
func segmentSources(base *Eval, stackNorm StackJSON, seg TraceSegmentJSON) ([]float64, error) {
	scale := 1.0
	if seg.PowerScale != nil {
		scale = *seg.PowerScale
	}
	if scale == 1 && len(seg.PowerBlocks) == 0 {
		// The base problem's own sources, verbatim.
		return append([]float64(nil), base.Problem.Q...), nil
	}
	sj := stackNorm
	pm := make([]float64, len(sj.PowerMap))
	if len(pm) == 0 {
		// The normalized base had no explicit map (no base blocks):
		// scale the uniform density and rasterize from there.
		pm = make([]float64, sj.NX*sj.NY)
		for i := range pm {
			pm[i] = sj.UniformPower
		}
	} else {
		copy(pm, sj.PowerMap)
	}
	for i := range pm {
		pm[i] *= scale
	}
	sj.PowerMap = pm
	sj.UniformPower = 0
	derived := EvalRequest{Stack: sj, PowerBlocks: seg.PowerBlocks, Solver: base.Req.Solver}
	dev, err := BuildEval(derived)
	if err != nil {
		return nil, err
	}
	return dev.Problem.Q, nil
}

// EncodeTraceState serializes a temperature field for a checkpoint:
// base64 of the little-endian IEEE-754 bits in cell order. The
// round-trip through DecodeTraceState is exact.
func EncodeTraceState(t []float64) string {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeTraceState deserializes a checkpoint field, checking the
// length against the grid and rejecting non-finite temperatures (a
// NaN seed would silently poison every later step).
func DecodeTraceState(s string, n int) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bad state encoding: %w", err)
	}
	if len(buf) != 8*n {
		return nil, fmt.Errorf("state has %d bytes, want %d (%d cells)", len(buf), 8*n, n)
	}
	out := make([]float64, n)
	for i := range out {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("state has non-finite temperature at cell %d", i)
		}
		out[i] = v
	}
	return out, nil
}
