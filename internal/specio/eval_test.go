package specio

// Tests for the eval request schema: normalization semantics
// (defaults, block rasterization, idempotence), validation rejects,
// and the strict decoder.

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func evalBase() EvalRequest {
	return EvalRequest{
		Stack: StackJSON{
			DieWUm: 200, DieHUm: 200,
			Tiers: 2, NX: 4, NY: 4,
			UniformPower: 10,
			BEOL:         "scaffolded", PillarCover: 0.1, Sink: "twophase",
		},
	}
}

func TestNormalizeDefaults(t *testing.T) {
	norm, err := evalBase().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	s := norm.Solver
	if s.Precond != "zline" || s.Tol != 1e-7 || s.MaxIter != 100000 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// No blocks → the power map stays implicit.
	if norm.Stack.PowerMap != nil || norm.Stack.UniformPower != 10 {
		t.Fatalf("block-free request should keep uniform power: %+v", norm.Stack)
	}

	jac := evalBase()
	jac.Solver.Precond = "jacobi"
	norm, err = jac.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Solver.Precond != "zline" {
		t.Fatalf("jacobi not upgraded to zline: %q", norm.Solver.Precond)
	}

	// Precision canonicalizes: the default tier collapses to the empty
	// string (pre-precision requests keep their content address), the
	// f32 tier to its short name.
	for in, want := range map[string]string{
		"": "", "f64": "", "float64": "", "f32": "f32", "float32": "f32",
	} {
		r := evalBase()
		r.Solver.Precision = in
		norm, err := r.Normalize()
		if err != nil {
			t.Fatalf("precision %q: %v", in, err)
		}
		if norm.Solver.Precision != want {
			t.Errorf("precision %q normalized to %q, want %q", in, norm.Solver.Precision, want)
		}
	}
}

func TestNormalizeRasterizesBlocks(t *testing.T) {
	req := evalBase()
	req.PowerBlocks = []PowerBlock{
		{X0: 0, Y0: 0, X1: 2, Y1: 1, DensityWPerCm2: 5},
		{X0: 1, Y0: 0, X1: 2, Y1: 2, DensityWPerCm2: 2},
	}
	norm, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.PowerBlocks != nil || norm.Stack.UniformPower != 0 {
		t.Fatalf("blocks/uniform power not folded into the map: %+v", norm)
	}
	want := []float64{
		15, 17, 10, 10,
		10, 12, 10, 10,
		10, 10, 10, 10,
		10, 10, 10, 10,
	}
	if !reflect.DeepEqual(norm.Stack.PowerMap, want) {
		t.Fatalf("power map = %v, want %v", norm.Stack.PowerMap, want)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	req := evalBase()
	req.PowerBlocks = []PowerBlock{{X0: 1, Y0: 1, X1: 3, Y1: 3, DensityWPerCm2: 7}}
	req.Transient = &TransientJSON{DtS: 1e-4, Steps: 5}
	once, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once.Stack, twice.Stack) || !reflect.DeepEqual(once.Solver, twice.Solver) ||
		!reflect.DeepEqual(once.Transient, twice.Transient) || twice.PowerBlocks != nil {
		t.Fatalf("Normalize not idempotent:\nonce  %+v\ntwice %+v", once, twice)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := map[string]func(*EvalRequest){
		"negative tol":      func(r *EvalRequest) { r.Solver.Tol = -1 },
		"nan tol":           func(r *EvalRequest) { r.Solver.Tol = math.NaN() },
		"inf tol":           func(r *EvalRequest) { r.Solver.Tol = math.Inf(1) },
		"negative max_iter": func(r *EvalRequest) { r.Solver.MaxIter = -3 },
		"negative timeout":  func(r *EvalRequest) { r.Solver.TimeoutMS = -1 },
		"bad precond":       func(r *EvalRequest) { r.Solver.Precond = "cholesky" },
		"bad precision":     func(r *EvalRequest) { r.Solver.Precision = "f16" },
		"zero dt":           func(r *EvalRequest) { r.Transient = &TransientJSON{DtS: 0, Steps: 1} },
		"negative dt":       func(r *EvalRequest) { r.Transient = &TransientJSON{DtS: -1e-5, Steps: 1} },
		"zero steps":        func(r *EvalRequest) { r.Transient = &TransientJSON{DtS: 1e-5, Steps: 0} },
		"too many steps":    func(r *EvalRequest) { r.Transient = &TransientJSON{DtS: 1e-5, Steps: EvalMaxSteps + 1} },
		"block outside grid": func(r *EvalRequest) {
			r.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 5, Y1: 1, DensityWPerCm2: 1}}
		},
		"inverted block": func(r *EvalRequest) {
			r.PowerBlocks = []PowerBlock{{X0: 3, Y0: 0, X1: 1, Y1: 1, DensityWPerCm2: 1}}
		},
		"negative block density": func(r *EvalRequest) {
			r.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 1, Y1: 1, DensityWPerCm2: -4}}
		},
		"nan block density": func(r *EvalRequest) {
			r.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 1, Y1: 1, DensityWPerCm2: math.NaN()}}
		},
		"wrong power map size": func(r *EvalRequest) {
			r.Stack.PowerMap = []float64{1, 2, 3}
			r.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 1, Y1: 1, DensityWPerCm2: 1}}
		},
		"blocks without grid": func(r *EvalRequest) {
			r.Stack.NX = 0
			r.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 1, Y1: 1, DensityWPerCm2: 1}}
		},
	}
	for name, mutate := range cases {
		req := evalBase()
		mutate(&req)
		if _, err := req.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted it", name)
		}
	}
}

func TestParseEvalStrict(t *testing.T) {
	if _, err := ParseEval([]byte(`{"stack":{"tiers":2},"not_a_field":1}`)); err == nil || !strings.Contains(err.Error(), "not_a_field") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	if _, err := ParseEval([]byte(`{"stack":`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestExampleEvalBuilds(t *testing.T) {
	raw, err := MarshalEval(ExampleEval())
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseEval(raw)
	if err != nil {
		t.Fatalf("example does not round-trip: %v", err)
	}
	ev, err := BuildEval(req)
	if err != nil {
		t.Fatalf("example does not build: %v", err)
	}
	if !ev.Steady() || ev.Mode() != "steady" || ev.Timeout <= 0 {
		t.Fatalf("example eval misconfigured: steady=%v timeout=%v", ev.Steady(), ev.Timeout)
	}
	if n := ev.Problem.Grid.NumCells(); len(ev.InitialField()) != n {
		t.Fatalf("initial field has %d cells, grid %d", len(ev.InitialField()), n)
	}
}

// TestCloneForPower: a clone is bitwise indistinguishable from a
// fresh build — same canonical problem bytes (full and family), same
// derived fields — while sharing every array except the sources, and
// it preserves the power validation of the full build path.
func TestCloneForPower(t *testing.T) {
	base := evalBase()
	base.Solver.TimeoutMS = 2000
	ev, err := BuildEval(base)
	if err != nil {
		t.Fatal(err)
	}

	hotter := evalBase()
	hotter.Stack.UniformPower = 0
	hotter.PowerBlocks = []PowerBlock{
		{X0: 0, Y0: 0, X1: 3, Y1: 3, DensityWPerCm2: 40},
		{X0: 1, Y0: 2, X1: 4, Y1: 4, DensityWPerCm2: 15},
	}
	hotter.Solver.TimeoutMS = 750
	clone, err := ev.CloneForPower(hotter)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildEval(hotter)
	if err != nil {
		t.Fatal(err)
	}
	for _, includeSources := range []bool{true, false} {
		var got, want bytes.Buffer
		if err := clone.Problem.WriteCanonical(&got, includeSources); err != nil {
			t.Fatal(err)
		}
		if err := built.Problem.WriteCanonical(&want, includeSources); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("clone canonical bytes (sources=%v) differ from fresh build", includeSources)
		}
	}
	if !reflect.DeepEqual(clone.Req, built.Req) {
		t.Fatal("clone normalized request differs from fresh build")
	}
	if clone.Timeout != built.Timeout || clone.Precision != built.Precision ||
		clone.Precond != built.Precond || clone.Tol != built.Tol || clone.MaxIter != built.MaxIter {
		t.Fatal("clone derived fields differ from fresh build")
	}
	// Geometry arrays are shared, sources are not, and the parent's
	// sources are untouched.
	if &clone.Problem.KX[0] != &ev.Problem.KX[0] {
		t.Fatal("clone does not share the parent's conductivity arrays")
	}
	if &clone.Problem.Q[0] == &ev.Problem.Q[0] {
		t.Fatal("clone shares the parent's source array")
	}
	if ev.Problem.Q[0] != built0(t, base) {
		t.Fatal("cloning mutated the parent's sources")
	}

	// Validation still runs: a negative power block is rejected by the
	// clone path exactly like the build path.
	bad := hotter
	bad.PowerBlocks = []PowerBlock{{X0: 0, Y0: 0, X1: 2, Y1: 2, DensityWPerCm2: -5}}
	if _, err := ev.CloneForPower(bad); err == nil {
		t.Fatal("negative power block accepted by CloneForPower")
	}
	badMap := hotter
	badMap.PowerBlocks = nil
	badMap.Stack.PowerMap = []float64{1, 2, 3} // wrong length for 4×4 grid
	if _, err := ev.CloneForPower(badMap); err == nil {
		t.Fatal("short power map accepted by CloneForPower")
	}
}

// built0 returns Q[0] of a freshly built evaluation of r.
func built0(t *testing.T, r EvalRequest) float64 {
	t.Helper()
	ev, err := BuildEval(r)
	if err != nil {
		t.Fatal(err)
	}
	return ev.Problem.Q[0]
}
