// Package specio parses and validates the JSON stack descriptions
// consumed by cmd/thermsim, turning them into solvable stack.Spec
// values. Keeping the translation here makes it testable and reusable
// by other tooling.
package specio

import (
	"encoding/json"
	"fmt"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/units"
)

// StackJSON is the on-disk schema.
type StackJSON struct {
	DieWUm        float64   `json:"die_w_um"`
	DieHUm        float64   `json:"die_h_um"`
	Tiers         int       `json:"tiers"`
	NX            int       `json:"nx"`
	NY            int       `json:"ny"`
	UniformPower  float64   `json:"uniform_power_w_per_cm2"`
	PowerMap      []float64 `json:"power_map_w_per_cm2,omitempty"`
	BEOL          string    `json:"beol"`
	PillarCover   float64   `json:"pillar_coverage"`
	Sink          string    `json:"sink"`
	MemoryPerTier bool      `json:"memory_per_tier"`
}

// Example returns a ready-to-run spec: the paper's headline 12-tier
// scaffolded Gemmini-class stack.
func Example() StackJSON {
	return StackJSON{
		DieWUm: 690, DieHUm: 660,
		Tiers: 12, NX: 16, NY: 16,
		UniformPower:  53,
		BEOL:          "scaffolded",
		PillarCover:   0.10,
		Sink:          "twophase",
		MemoryPerTier: true,
	}
}

// Parse decodes raw JSON into the schema.
func Parse(raw []byte) (StackJSON, error) {
	var sj StackJSON
	if err := json.Unmarshal(raw, &sj); err != nil {
		return StackJSON{}, fmt.Errorf("specio: %w", err)
	}
	return sj, nil
}

// Marshal renders the schema as indented JSON.
func Marshal(sj StackJSON) ([]byte, error) {
	return json.MarshalIndent(sj, "", "  ")
}

// Build converts the schema into a solvable stack spec.
func Build(sj StackJSON) (*stack.Spec, error) {
	if sj.NX <= 0 || sj.NY <= 0 {
		return nil, fmt.Errorf("specio: bad grid %dx%d", sj.NX, sj.NY)
	}
	var beol stack.BEOLProps
	switch sj.BEOL {
	case "conventional", "":
		beol = stack.ConventionalBEOL()
	case "scaffolded":
		beol = stack.ScaffoldedBEOL()
	case "paper-conventional":
		beol = stack.PaperBEOL(false)
	case "paper-scaffolded":
		beol = stack.PaperBEOL(true)
	default:
		return nil, fmt.Errorf("specio: unknown beol %q", sj.BEOL)
	}
	var sink heatsink.Model
	switch sj.Sink {
	case "twophase", "":
		sink = heatsink.TwoPhase()
	case "microfluidic":
		sink = heatsink.Microfluidic()
	case "coldplate":
		sink = heatsink.ColdPlate()
	case "microchannel":
		sink = heatsink.TuckermanPease().Model()
	default:
		return nil, fmt.Errorf("specio: unknown sink %q", sj.Sink)
	}
	pm := make([]float64, sj.NX*sj.NY)
	switch {
	case len(sj.PowerMap) == len(pm):
		for i, q := range sj.PowerMap {
			if q < 0 {
				return nil, fmt.Errorf("specio: negative power at cell %d", i)
			}
			pm[i] = units.WPerCm2ToWPerM2(q)
		}
	case len(sj.PowerMap) == 0:
		if sj.UniformPower < 0 {
			return nil, fmt.Errorf("specio: negative uniform power %g", sj.UniformPower)
		}
		for i := range pm {
			pm[i] = units.WPerCm2ToWPerM2(sj.UniformPower)
		}
	default:
		return nil, fmt.Errorf("specio: power map has %d cells, want %d", len(sj.PowerMap), sj.NX*sj.NY)
	}
	if sj.PillarCover < 0 || sj.PillarCover > 1 {
		return nil, fmt.Errorf("specio: pillar coverage %g outside [0,1]", sj.PillarCover)
	}
	spec := &stack.Spec{
		DieW: units.UmToM(sj.DieWUm), DieH: units.UmToM(sj.DieHUm),
		Tiers: sj.Tiers, NX: sj.NX, NY: sj.NY,
		PowerMaps:     [][]float64{pm},
		BEOL:          beol,
		Sink:          sink,
		MemoryPerTier: sj.MemoryPerTier,
	}
	if sj.PillarCover > 0 {
		pf := stack.NewPillarField(sj.NX, sj.NY)
		for i := range pf.Coverage {
			pf.Coverage[i] = sj.PillarCover
		}
		spec.Pillars = pf
	}
	if _, _, err := spec.Build(); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	return spec, nil
}
