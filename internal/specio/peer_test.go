package specio

// Peer wire schema unit tests: every validation branch that guards
// the cluster protocol — key shape, address agreement between path,
// body, and response, and state decoding (including the NaN/Inf
// rejection that keeps a hostile peer from poisoning warm starts).

import (
	"encoding/base64"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func validKey(c byte) string { return strings.Repeat(string(c), 64) }

func encodeState(vals []float64) string {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func TestValidPeerKey(t *testing.T) {
	cases := []struct {
		key string
		ok  bool
	}{
		{validKey('a'), true},
		{"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", true},
		{strings.Repeat("A", 64), false}, // uppercase
		{strings.Repeat("a", 63), false},
		{strings.Repeat("a", 65), false},
		{"", false},
		{strings.Repeat("g", 64), false}, // non-hex
	}
	for _, tc := range cases {
		if got := ValidPeerKey(tc.key); got != tc.ok {
			t.Errorf("ValidPeerKey(%q) = %v, want %v", tc.key, got, tc.ok)
		}
	}
}

func TestPeerEntryRoundTrip(t *testing.T) {
	key := validKey('a')
	state := []float64{300.5, 301.25, 299.75}
	e := &PeerCacheEntry{
		Key:       key,
		FamilyKey: validKey('b'),
		Resp:      EvalResponse{Key: key, Mode: "steady"},
		State:     encodeState(state),
	}
	raw, err := MarshalPeerEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, tvec, err := ParsePeerEntry(raw, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != key || got.FamilyKey != e.FamilyKey {
		t.Fatalf("round trip mangled keys: %+v", got)
	}
	if len(tvec) != len(state) {
		t.Fatalf("decoded %d cells, want %d", len(tvec), len(state))
	}
	for i := range state {
		if tvec[i] != state[i] {
			t.Fatalf("cell %d: %v != %v (must be bitwise)", i, tvec[i], state[i])
		}
	}
}

func TestPeerEntryValidateRejects(t *testing.T) {
	key := validKey('a')
	good := func() PeerCacheEntry {
		return PeerCacheEntry{Key: key, Resp: EvalResponse{Key: key}, State: encodeState([]float64{300})}
	}
	cases := []struct {
		name   string
		addr   string
		mutate func(*PeerCacheEntry)
		want   string
	}{
		{"bad address", "nope", func(e *PeerCacheEntry) {}, "bad peer cache key"},
		{"key/address mismatch", key, func(e *PeerCacheEntry) { e.Key = validKey('c') }, "does not match address"},
		{"response key mismatch", key, func(e *PeerCacheEntry) { e.Resp.Key = validKey('c') }, "response key"},
		{"bad family key", key, func(e *PeerCacheEntry) { e.FamilyKey = "xyz" }, "bad peer family key"},
		{"undecodable state", key, func(e *PeerCacheEntry) { e.State = "!!!" }, "bad state encoding"},
		{"empty state", key, func(e *PeerCacheEntry) { e.State = "" }, "not a positive multiple"},
		{"ragged state", key, func(e *PeerCacheEntry) { e.State = base64.StdEncoding.EncodeToString([]byte{1, 2, 3}) }, "not a positive multiple"},
		{"NaN state", key, func(e *PeerCacheEntry) { e.State = encodeState([]float64{math.NaN()}) }, "non-finite"},
		{"Inf state", key, func(e *PeerCacheEntry) { e.State = encodeState([]float64{math.Inf(1)}) }, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := good()
			tc.mutate(&e)
			if _, err := e.Validate(tc.addr); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestParsePeerEntryRejectsBadJSON(t *testing.T) {
	if _, _, err := ParsePeerEntry([]byte("{nope"), validKey('a')); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, _, err := ParsePeerEntry([]byte(`{"key": "x", "unknown_field": 1}`), validKey('a')); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestPeerFamilyAnnounce(t *testing.T) {
	good := PeerFamilyAnnounce{FamilyKey: validKey('a'), Key: validKey('b'), Node: "node0"}
	raw, err := MarshalPeerAnnounce(good)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePeerAnnounce(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != good {
		t.Fatalf("round trip changed the announce: %+v", got)
	}

	bad := []PeerFamilyAnnounce{
		{FamilyKey: "x", Key: validKey('b'), Node: "n"},
		{FamilyKey: validKey('a'), Key: "x", Node: "n"},
		{FamilyKey: validKey('a'), Key: validKey('b'), Node: ""},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad announce %d accepted", i)
		}
	}
	if _, err := ParsePeerAnnounce([]byte("{nope")); err == nil {
		t.Fatal("malformed announce JSON accepted")
	}
}
