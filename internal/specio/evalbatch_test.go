package specio

import (
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestEvalBatchExpand(t *testing.T) {
	base := ExampleEval()
	breq := EvalBatchRequest{
		Base: base,
		Items: []BatchItem{
			{}, // base verbatim
			{UniformPower: f64(77)},
			{PowerBlocks: []PowerBlock{}}, // explicit empty list removes base blocks
			{PowerMap: make([]float64, base.Stack.NX*base.Stack.NY)},
		},
	}
	derived, err := breq.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 4 {
		t.Fatalf("expanded to %d items, want 4", len(derived))
	}
	if got := derived[0]; got.Stack.UniformPower != base.Stack.UniformPower || len(got.PowerBlocks) != len(base.PowerBlocks) {
		t.Errorf("zero item changed the base request: %+v", got)
	}
	if derived[1].Stack.UniformPower != 77 {
		t.Errorf("uniform override: got %g, want 77", derived[1].Stack.UniformPower)
	}
	if len(derived[1].PowerBlocks) != len(base.PowerBlocks) {
		t.Error("uniform override clobbered the base power blocks")
	}
	if len(derived[2].PowerBlocks) != 0 {
		t.Error("explicit empty block list did not remove the base blocks")
	}
	if len(derived[3].Stack.PowerMap) != base.Stack.NX*base.Stack.NY {
		t.Error("power map override not applied")
	}

	// Envelope errors.
	if _, err := (EvalBatchRequest{Base: base}).Expand(); err == nil || !strings.Contains(err.Error(), "no items") {
		t.Errorf("empty batch: err = %v", err)
	}
	big := EvalBatchRequest{Base: base, Items: make([]BatchItem, EvalMaxBatch+1)}
	if _, err := big.Expand(); err == nil || !strings.Contains(err.Error(), "max") {
		t.Errorf("oversized batch: err = %v", err)
	}
	tr := EvalBatchRequest{Base: base, Items: []BatchItem{{}}}
	tr.Base.Transient = &TransientJSON{DtS: 1e-4, Steps: 1}
	if _, err := tr.Expand(); err == nil || !strings.Contains(err.Error(), "steady-only") {
		t.Errorf("transient base: err = %v", err)
	}
}

func TestEvalBatchJSONRoundTrip(t *testing.T) {
	breq := ExampleEvalBatch()
	raw, err := MarshalEvalBatch(breq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseEvalBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != len(breq.Items) {
		t.Fatalf("round trip lost items: %d vs %d", len(back.Items), len(breq.Items))
	}
	if _, err := back.Expand(); err != nil {
		t.Fatalf("example batch does not expand: %v", err)
	}
	if _, err := ParseEvalBatch([]byte(`{"base":{},"items":[{"bogus":1}]}`)); err == nil {
		t.Error("unknown item field accepted")
	}
}
