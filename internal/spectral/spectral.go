// Package spectral provides a direct (non-iterative) solver for
// layered 3D-IC thermal problems: each z-layer has laterally uniform
// conductivity, so the finite-volume operator diagonalizes in
// discrete cosine modes over (x, y), leaving one tridiagonal system
// in z per mode — solved exactly by the Thomas algorithm.
//
// The method reproduces the iterative finite-volume solution to
// machine precision on pillar-free stacks (same discretization, same
// boundary conditions), which makes it this repository's equivalent
// of the paper's cross-referencing of PACT against COMSOL and
// Cadence Celsius: two independent solution paths that must agree.
// It is also a fast direct backend for conventional-flow sweeps where
// no pillar field breaks lateral uniformity.
package spectral

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a layered stack: uniform lateral grid, per-layer uniform
// conductivities, arbitrary per-layer source maps.
type Problem struct {
	LX, LY float64 // lateral extents, m
	NX, NY int     // lateral resolution
	// DZ is the thickness of each z cell layer, bottom first.
	DZ []float64
	// KLat, KVert are the per-layer conductivities (W/m/K).
	KLat, KVert []float64
	// Q holds per-layer volumetric source maps (NX·NY, W/m³); nil
	// entries mean zero.
	Q [][]float64
	// SinkH, SinkT form the convective boundary at the bottom face.
	SinkH, SinkT float64
}

// Validate checks the problem.
func (p *Problem) Validate() error {
	if p.LX <= 0 || p.LY <= 0 || p.NX < 1 || p.NY < 1 {
		return fmt.Errorf("spectral: bad lateral geometry %gx%g @ %dx%d", p.LX, p.LY, p.NX, p.NY)
	}
	nz := len(p.DZ)
	if nz < 1 {
		return errors.New("spectral: no layers")
	}
	if len(p.KLat) != nz || len(p.KVert) != nz {
		return fmt.Errorf("spectral: %d layers but %d/%d conductivities", nz, len(p.KLat), len(p.KVert))
	}
	for k := 0; k < nz; k++ {
		if p.DZ[k] <= 0 || p.KLat[k] <= 0 || p.KVert[k] <= 0 {
			return fmt.Errorf("spectral: non-positive layer %d parameters", k)
		}
	}
	if p.Q != nil && len(p.Q) != nz {
		return fmt.Errorf("spectral: %d source maps for %d layers", len(p.Q), nz)
	}
	for k, q := range p.Q {
		if q != nil && len(q) != p.NX*p.NY {
			return fmt.Errorf("spectral: layer %d source has %d cells, want %d", k, len(q), p.NX*p.NY)
		}
	}
	if p.SinkH <= 0 {
		return errors.New("spectral: non-positive sink h")
	}
	return nil
}

// Field is the solved temperature, layered like the input.
type Field struct {
	NX, NY int
	T      [][]float64 // per layer, NX·NY
}

// Max returns the peak temperature.
func (f *Field) Max() float64 {
	m := math.Inf(-1)
	for _, layer := range f.T {
		for _, t := range layer {
			if t > m {
				m = t
			}
		}
	}
	return m
}

// At returns the temperature of cell (i, j) in layer k.
func (f *Field) At(i, j, k int) float64 { return f.T[k][j*f.NX+i] }

// Solve runs the spectral method.
func (p *Problem) Solve() (*Field, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nx, ny, nz := p.NX, p.NY, len(p.DZ)
	dx := p.LX / float64(nx)
	dy := p.LY / float64(ny)

	// Forward DCT-II of each layer's source map (orthogonal discrete
	// cosine basis matching the Neumann finite-volume operator).
	cosX := dctBasis(nx)
	cosY := dctBasis(ny)
	qhat := make([][]float64, nz)
	for k := 0; k < nz; k++ {
		if p.Q == nil || p.Q[k] == nil {
			continue
		}
		qhat[k] = dct2(p.Q[k], nx, ny, cosX, cosY)
	}

	// Per-mode z-ladders.
	that := make([][]float64, nz)
	for k := range that {
		that[k] = make([]float64, nx*ny)
	}
	diag := make([]float64, nz)
	sub := make([]float64, nz) // sub[k] couples layer k to k-1
	rhs := make([]float64, nz)
	cp := make([]float64, nz)
	dp := make([]float64, nz)

	// Vertical face conductances per area (W/m²/K) between layers.
	gz := make([]float64, nz-1)
	for k := 0; k+1 < nz; k++ {
		gz[k] = 1 / (p.DZ[k]/(2*p.KVert[k]) + p.DZ[k+1]/(2*p.KVert[k+1]))
	}
	gBottom := 1 / (p.DZ[0]/(2*p.KVert[0]) + 1/p.SinkH)

	for m := 0; m < nx; m++ {
		// Discrete lateral eigenvalue along x.
		muX := (2 - 2*math.Cos(math.Pi*float64(m)/float64(nx))) / (dx * dx)
		for n := 0; n < ny; n++ {
			muY := (2 - 2*math.Cos(math.Pi*float64(n)/float64(ny))) / (dy * dy)
			mode := n*nx + m
			// Assemble the tridiagonal ladder: per unit area.
			for k := 0; k < nz; k++ {
				d := p.KLat[k] * (muX + muY) * p.DZ[k]
				if k > 0 {
					d += gz[k-1]
				}
				if k+1 < nz {
					d += gz[k]
				}
				if k == 0 {
					d += gBottom
				}
				diag[k] = d
				if k > 0 {
					sub[k] = -gz[k-1]
				}
				rhs[k] = 0
				if qhat[k] != nil {
					rhs[k] = qhat[k][mode] * p.DZ[k]
				}
			}
			// The sink only drives the (0,0) mode (uniform ambient).
			if m == 0 && n == 0 {
				rhs[0] += gBottom * p.SinkT
			}
			// Thomas solve with sub-diagonal sub[k] (=-gz[k-1]) and
			// super-diagonal -gz[k].
			cp[0] = -gzOr0(gz, 0) / diag[0]
			dp[0] = rhs[0] / diag[0]
			for k := 1; k < nz; k++ {
				mden := diag[k] - sub[k]*cp[k-1]
				if k+1 < nz {
					cp[k] = -gz[k] / mden
				}
				dp[k] = (rhs[k] - sub[k]*dp[k-1]) / mden
			}
			that[nz-1][mode] = dp[nz-1]
			for k := nz - 2; k >= 0; k-- {
				that[k][mode] = dp[k] - cp[k]*that[k+1][mode]
			}
		}
	}

	// Inverse DCT per layer.
	out := &Field{NX: nx, NY: ny, T: make([][]float64, nz)}
	for k := 0; k < nz; k++ {
		out.T[k] = idct2(that[k], nx, ny, cosX, cosY)
	}
	return out, nil
}

func gzOr0(gz []float64, k int) float64 {
	if k < len(gz) {
		return gz[k]
	}
	return 0
}

// dctBasis precomputes cos(π·m·(i+0.5)/n).
func dctBasis(n int) [][]float64 {
	b := make([][]float64, n)
	for m := 0; m < n; m++ {
		b[m] = make([]float64, n)
		for i := 0; i < n; i++ {
			b[m][i] = math.Cos(math.Pi * float64(m) * (float64(i) + 0.5) / float64(n))
		}
	}
	return b
}

// dct2 computes the 2-D DCT-II coefficients normalized so that
// idct2(dct2(v)) = v.
func dct2(v []float64, nx, ny int, cosX, cosY [][]float64) []float64 {
	// Transform rows (x), then columns (y).
	tmp := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for m := 0; m < nx; m++ {
			s := 0.0
			for i := 0; i < nx; i++ {
				s += v[j*nx+i] * cosX[m][i]
			}
			norm := 2.0 / float64(nx)
			if m == 0 {
				norm = 1.0 / float64(nx)
			}
			tmp[j*nx+m] = s * norm
		}
	}
	out := make([]float64, nx*ny)
	for m := 0; m < nx; m++ {
		for n := 0; n < ny; n++ {
			s := 0.0
			for j := 0; j < ny; j++ {
				s += tmp[j*nx+m] * cosY[n][j]
			}
			norm := 2.0 / float64(ny)
			if n == 0 {
				norm = 1.0 / float64(ny)
			}
			out[n*nx+m] = s * norm
		}
	}
	return out
}

// idct2 inverts dct2.
func idct2(c []float64, nx, ny int, cosX, cosY [][]float64) []float64 {
	tmp := make([]float64, nx*ny)
	for m := 0; m < nx; m++ {
		for j := 0; j < ny; j++ {
			s := 0.0
			for n := 0; n < ny; n++ {
				s += c[n*nx+m] * cosY[n][j]
			}
			tmp[j*nx+m] = s
		}
	}
	out := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			s := 0.0
			for m := 0; m < nx; m++ {
				s += tmp[j*nx+m] * cosX[m][i]
			}
			out[j*nx+i] = s
		}
	}
	return out
}
