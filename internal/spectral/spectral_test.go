package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/mesh"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

// layeredProblem builds a chip-like layered stack with a hotspot.
func layeredProblem() *Problem {
	const nx, ny = 12, 12
	p := &Problem{
		LX: 690e-6, LY: 660e-6, NX: nx, NY: ny,
		DZ:    []float64{5e-6, 5e-6, 100e-9, 700e-9, 240e-9, 100e-9, 700e-9, 240e-9},
		KLat:  []float64{180, 180, 65, 5.59, 16.4, 65, 5.59, 16.4},
		KVert: []float64{180, 180, 30, 0.397, 13.3, 30, 0.397, 13.3},
		SinkH: 1e6, SinkT: 373.15,
	}
	p.Q = make([][]float64, len(p.DZ))
	q := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			q[j*nx+i] = 53e4 / 100e-9
			if i < 3 && j < 3 {
				q[j*nx+i] = 95e4 / 100e-9
			}
		}
	}
	p.Q[2] = q
	p.Q[5] = q
	return p
}

// equivalentFVM builds the identical problem for the iterative
// finite-volume solver.
func equivalentFVM(t *testing.T, p *Problem) *solver.Problem {
	t.Helper()
	zb := mesh.NewZLayerBuilder()
	for _, dz := range p.DZ {
		zb.Add("l", dz, 1)
	}
	xs := make([]float64, p.NX+1)
	for i := range xs {
		xs[i] = p.LX * float64(i) / float64(p.NX)
	}
	ys := make([]float64, p.NY+1)
	for j := range ys {
		ys[j] = p.LY * float64(j) / float64(p.NY)
	}
	g, err := mesh.New(xs, ys, zb.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	fp := solver.NewProblem(g)
	for k := 0; k < g.NZ(); k++ {
		for j := 0; j < p.NY; j++ {
			for i := 0; i < p.NX; i++ {
				c := g.Index(i, j, k)
				fp.SetAniso(c, p.KLat[k], p.KVert[k])
				if p.Q[k] != nil {
					fp.Q[c] = p.Q[k][j*p.NX+i]
				}
			}
		}
	}
	fp.Bounds[solver.ZMin] = solver.ConvectiveBC(p.SinkH, p.SinkT)
	return fp
}

// TestSpectralMatchesFVM: the two backends solve the same discrete
// system, so they must agree essentially to solver tolerance — the
// repository's PACT-vs-COMSOL cross-reference.
func TestSpectralMatchesFVM(t *testing.T) {
	p := layeredProblem()
	sf, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fp := equivalentFVM(t, p)
	rf, err := solver.SolveSteady(fp, solver.Options{Tol: 1e-12, Precond: solver.ZLine})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := 0; k < len(p.DZ); k++ {
		for j := 0; j < p.NY; j++ {
			for i := 0; i < p.NX; i++ {
				d := math.Abs(sf.At(i, j, k) - rf.At(i, j, k))
				if d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 1e-6 {
		t.Errorf("spectral and FVM disagree by %g K", worst)
	}
	if math.Abs(sf.Max()-rf.Max()) > 1e-6 {
		t.Errorf("peaks disagree: %g vs %g", sf.Max(), rf.Max())
	}
}

// TestSpectralEnergyBalance: the converged field's sink outflow
// equals the injected power.
func TestSpectralEnergyBalance(t *testing.T) {
	p := layeredProblem()
	f, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	dx := p.LX / float64(p.NX)
	dy := p.LY / float64(p.NY)
	var in, out float64
	for k, q := range p.Q {
		if q == nil {
			continue
		}
		for _, v := range q {
			in += v * dx * dy * p.DZ[k]
		}
	}
	gB := 1 / (p.DZ[0]/(2*p.KVert[0]) + 1/p.SinkH)
	for j := 0; j < p.NY; j++ {
		for i := 0; i < p.NX; i++ {
			out += gB * (f.At(i, j, 0) - p.SinkT) * dx * dy
		}
	}
	if math.Abs(in-out) > 1e-8*in {
		t.Errorf("energy imbalance: in %g W, out %g W", in, out)
	}
}

// TestSpectralUniformSlab: a uniform slab with uniform heating has an
// exactly flat lateral profile per layer.
func TestSpectralUniformSlab(t *testing.T) {
	p := &Problem{
		LX: 1e-4, LY: 1e-4, NX: 8, NY: 8,
		DZ:    []float64{1e-6, 1e-6, 1e-6},
		KLat:  []float64{10, 10, 10},
		KVert: []float64{10, 10, 10},
		SinkH: 1e5, SinkT: 300,
	}
	q := make([]float64, 64)
	for i := range q {
		q[i] = 1e10
	}
	p.Q = [][]float64{nil, nil, q}
	f, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		ref := f.At(0, 0, k)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				if math.Abs(f.At(i, j, k)-ref) > 1e-9 {
					t.Fatalf("layer %d not flat", k)
				}
			}
		}
	}
	// Analytic check of the top layer: rise = flux·(1/h + R below).
	flux := 1e10 * 1e-6
	want := p.SinkT + flux*(1/p.SinkH+ // sink
		1e-6/10+ // layer 0
		1e-6/10+ // layer 1
		0.5e-6/10) // half of source layer
	if math.Abs(f.At(0, 0, 2)-want) > 1e-6 {
		t.Errorf("top layer %g, analytic %g", f.At(0, 0, 2), want)
	}
}

func TestDCTRoundTripQuick(t *testing.T) {
	const nx, ny = 7, 5
	cosX := dctBasis(nx)
	cosY := dctBasis(ny)
	f := func(seed [nx * ny]uint8) bool {
		v := make([]float64, nx*ny)
		for i := range v {
			v[i] = float64(seed[i]) - 128
		}
		back := idct2(dct2(v, nx, ny, cosX, cosY), nx, ny, cosX, cosY)
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSpectralRejections(t *testing.T) {
	good := layeredProblem()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Problem){
		func(p *Problem) { p.LX = 0 },
		func(p *Problem) { p.DZ = nil },
		func(p *Problem) { p.KLat = p.KLat[:2] },
		func(p *Problem) { p.KVert[0] = -1 },
		func(p *Problem) { p.DZ[0] = 0 },
		func(p *Problem) { p.SinkH = 0 },
		func(p *Problem) { p.Q = p.Q[:3] },
		func(p *Problem) { p.Q[2] = p.Q[2][:5] },
	}
	for i, mutate := range cases {
		p := layeredProblem()
		mutate(p)
		if _, err := p.Solve(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestLayeredViewFromStack: a pillar-free stack.Spec round-trips into
// the spectral backend and agrees with the iterative solution.
func TestLayeredViewFromStack(t *testing.T) {
	g := design.Gemmini()
	const nx, ny = 10, 10
	spec := &stack.Spec{
		DieW: g.Tier.Die.W, DieH: g.Tier.Die.H,
		Tiers: 6, NX: nx, NY: ny,
		PowerMaps:     [][]float64{g.Tier.PowerMap(nx, ny)},
		BEOL:          stack.ConventionalBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
	dz, kLat, kVert, q, err := spec.LayeredView()
	if err != nil {
		t.Fatal(err)
	}
	sp := &Problem{
		LX: spec.DieW, LY: spec.DieH, NX: nx, NY: ny,
		DZ: dz, KLat: kLat, KVert: kVert, Q: q,
		SinkH: spec.Sink.H, SinkT: spec.Sink.Ambient(),
	}
	sf, err := sp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Solve(solver.Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sf.Max() - res.MaxT()); d > 1e-4 {
		t.Errorf("spectral %g vs FVM %g (Δ=%g K)", sf.Max(), res.MaxT(), d)
	}
	// A pillared spec refuses the layered view.
	pf := stack.NewPillarField(nx, ny)
	pf.Coverage[0] = 0.5
	spec.Pillars = pf
	if _, _, _, _, err := spec.LayeredView(); err == nil {
		t.Error("pillared spec accepted by LayeredView")
	}
	spec.Pillars = nil
	spec.InterTierTBR = 1e-8
	if _, _, _, _, err := spec.LayeredView(); err == nil {
		t.Error("TBR spec accepted by LayeredView")
	}
}
