package floorplan

import "testing"

func BenchmarkAnneal(b *testing.B) {
	plan := annealPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anneal(plan, AnnealOptions{AreaWeight: 0.5, Seed: int64(i), Iterations: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerMap(b *testing.B) {
	plan := annealPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PowerMap(32, 32)
	}
}

func BenchmarkThermalProxy(b *testing.B) {
	plan := annealPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		thermalProxy(plan)
	}
}
