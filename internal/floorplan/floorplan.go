// Package floorplan provides floorplan geometry (rectangles,
// functional units, hard macros), power-map rasterization, and a
// sequence-pair simulated-annealing thermal-aware floorplanner — the
// reproduction's substitute for the Corblivar suite the paper uses in
// its conventional-3D baseline flow (Sec. III-B).
package floorplan

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle in meters.
type Rect struct {
	X, Y float64 // lower-left corner
	W, H float64
}

// Area returns W·H.
func (r Rect) Area() float64 { return r.W * r.H }

// MaxX returns the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the top edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Center returns the rectangle's center point.
func (r Rect) Center() (float64, float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Overlaps reports whether the interiors of r and o intersect
// (touching edges do not count).
func (r Rect) Overlaps(o Rect) bool {
	return r.X < o.MaxX() && o.X < r.MaxX() && r.Y < o.MaxY() && o.Y < r.MaxY()
}

// Contains reports whether o lies entirely within r (edges may touch).
func (r Rect) Contains(o Rect) bool {
	return o.X >= r.X-1e-15 && o.Y >= r.Y-1e-15 && o.MaxX() <= r.MaxX()+1e-15 && o.MaxY() <= r.MaxY()+1e-15
}

// ContainsPoint reports whether (x, y) lies inside r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return x >= r.X && x < r.MaxX() && y >= r.Y && y < r.MaxY()
}

// Intersection returns the overlapping region of r and o (zero-area
// if disjoint).
func (r Rect) Intersection(o Rect) Rect {
	x0 := math.Max(r.X, o.X)
	y0 := math.Max(r.Y, o.Y)
	x1 := math.Min(r.MaxX(), o.MaxX())
	y1 := math.Min(r.MaxY(), o.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %+.1fx%.1f µm]", r.X*1e6, r.Y*1e6, r.W*1e6, r.H*1e6)
}

// Unit is one functional unit of a floorplan.
type Unit struct {
	Name string
	Rect Rect
	// PowerDensity is the unit's active power density, W/m².
	PowerDensity float64
	// IsMacro marks hard macros (e.g. SRAM blocks): they cannot be
	// reshaped by the floorplanner and pillars cannot be placed
	// inside them.
	IsMacro bool
}

// Power returns the unit's total power (W).
func (u Unit) Power() float64 { return u.PowerDensity * u.Rect.Area() }

// Floorplan is a single-tier floorplan: a die outline, placed units,
// and net connectivity for wirelength estimation.
type Floorplan struct {
	Name  string
	Die   Rect
	Units []Unit
	// Nets lists connected unit-name groups for HPWL.
	Nets [][]string
}

// Validate checks that units fit in the die and do not overlap.
func (f *Floorplan) Validate() error {
	if f.Die.W <= 0 || f.Die.H <= 0 {
		return errors.New("floorplan: empty die")
	}
	for i, u := range f.Units {
		if u.Rect.W <= 0 || u.Rect.H <= 0 {
			return fmt.Errorf("floorplan: unit %s has empty rect", u.Name)
		}
		if !f.Die.Contains(u.Rect) {
			return fmt.Errorf("floorplan: unit %s %v outside die %v", u.Name, u.Rect, f.Die)
		}
		if u.PowerDensity < 0 {
			return fmt.Errorf("floorplan: unit %s has negative power density", u.Name)
		}
		for j := i + 1; j < len(f.Units); j++ {
			if u.Rect.Overlaps(f.Units[j].Rect) {
				return fmt.Errorf("floorplan: units %s and %s overlap", u.Name, f.Units[j].Name)
			}
		}
	}
	for _, net := range f.Nets {
		for _, name := range net {
			if _, err := f.Find(name); err != nil {
				return fmt.Errorf("floorplan: net references unknown unit %q", name)
			}
		}
	}
	return nil
}

// Find returns the unit with the given name.
func (f *Floorplan) Find(name string) (Unit, error) {
	for _, u := range f.Units {
		if u.Name == name {
			return u, nil
		}
	}
	return Unit{}, fmt.Errorf("floorplan: no unit %q", name)
}

// TotalPower returns the sum of unit powers (W).
func (f *Floorplan) TotalPower() float64 {
	p := 0.0
	for _, u := range f.Units {
		p += u.Power()
	}
	return p
}

// MeanPowerDensity returns total power over die area (W/m²).
func (f *Floorplan) MeanPowerDensity() float64 {
	return f.TotalPower() / f.Die.Area()
}

// PeakPowerDensity returns the highest unit power density (W/m²).
func (f *Floorplan) PeakPowerDensity() float64 {
	p := 0.0
	for _, u := range f.Units {
		if u.PowerDensity > p {
			p = u.PowerDensity
		}
	}
	return p
}

// Macros returns the hard macros of the floorplan.
func (f *Floorplan) Macros() []Unit {
	var out []Unit
	for _, u := range f.Units {
		if u.IsMacro {
			out = append(out, u)
		}
	}
	return out
}

// HPWL returns the half-perimeter wirelength over all nets (m),
// using unit centers as pin locations.
func (f *Floorplan) HPWL() float64 {
	total := 0.0
	for _, net := range f.Nets {
		if len(net) < 2 {
			continue
		}
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, name := range net {
			u, err := f.Find(name)
			if err != nil {
				continue
			}
			cx, cy := u.Rect.Center()
			minX = math.Min(minX, cx)
			minY = math.Min(minY, cy)
			maxX = math.Max(maxX, cx)
			maxY = math.Max(maxY, cy)
		}
		if maxX >= minX {
			total += (maxX - minX) + (maxY - minY)
		}
	}
	return total
}

// PowerMap rasterizes the floorplan's power density onto an nx×ny
// grid over the die, returning W/m² per cell (row-major, x fastest).
// Unit power is distributed by exact area overlap, so total power is
// conserved to rounding.
func (f *Floorplan) PowerMap(nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	dx := f.Die.W / float64(nx)
	dy := f.Die.H / float64(ny)
	cellArea := dx * dy
	for _, u := range f.Units {
		if u.PowerDensity == 0 {
			continue
		}
		i0 := int((u.Rect.X - f.Die.X) / dx)
		i1 := int(math.Ceil((u.Rect.MaxX() - f.Die.X) / dx))
		j0 := int((u.Rect.Y - f.Die.Y) / dy)
		j1 := int(math.Ceil((u.Rect.MaxY() - f.Die.Y) / dy))
		for j := max(j0, 0); j < min(j1, ny); j++ {
			for i := max(i0, 0); i < min(i1, nx); i++ {
				cell := Rect{X: f.Die.X + float64(i)*dx, Y: f.Die.Y + float64(j)*dy, W: dx, H: dy}
				ov := cell.Intersection(u.Rect).Area()
				if ov > 0 {
					out[j*nx+i] += u.PowerDensity * ov / cellArea
				}
			}
		}
	}
	return out
}

// MacroAreaFraction rasterizes the hard-macro coverage of each cell
// of an nx×ny grid over the die (row-major, x fastest): 1 means the
// cell is entirely macro, 0 entirely placeable logic. Pillar
// placement uses this to cap insertion in macro-dominated cells.
func (f *Floorplan) MacroAreaFraction(nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	dx := f.Die.W / float64(nx)
	dy := f.Die.H / float64(ny)
	cellArea := dx * dy
	for _, m := range f.Macros() {
		i0 := int((m.Rect.X - f.Die.X) / dx)
		i1 := int(math.Ceil((m.Rect.MaxX() - f.Die.X) / dx))
		j0 := int((m.Rect.Y - f.Die.Y) / dy)
		j1 := int(math.Ceil((m.Rect.MaxY() - f.Die.Y) / dy))
		for j := max(j0, 0); j < min(j1, ny); j++ {
			for i := max(i0, 0); i < min(i1, nx); i++ {
				cell := Rect{X: f.Die.X + float64(i)*dx, Y: f.Die.Y + float64(j)*dy, W: dx, H: dy}
				out[j*nx+i] += cell.Intersection(m.Rect).Area() / cellArea
			}
		}
	}
	for i, v := range out {
		if v > 1 {
			out[i] = 1
		}
	}
	return out
}

// Clone deep-copies the floorplan.
func (f *Floorplan) Clone() *Floorplan {
	c := &Floorplan{Name: f.Name, Die: f.Die}
	c.Units = append([]Unit(nil), f.Units...)
	for _, n := range f.Nets {
		c.Nets = append(c.Nets, append([]string(nil), n...))
	}
	return c
}

// Scaled returns a copy with the die and all unit rectangles scaled
// by √factor in each dimension, preserving each unit's total power
// (power density scales down by factor). Used to model footprint
// growth: the same logic spread over more area.
func (f *Floorplan) Scaled(factor float64) *Floorplan {
	if factor <= 0 {
		factor = 1
	}
	s := math.Sqrt(factor)
	c := f.Clone()
	c.Die.W *= s
	c.Die.H *= s
	for i := range c.Units {
		u := &c.Units[i]
		u.Rect.X = f.Die.X + (u.Rect.X-f.Die.X)*s
		u.Rect.Y = f.Die.Y + (u.Rect.Y-f.Die.Y)*s
		u.Rect.W *= s
		u.Rect.H *= s
		u.PowerDensity /= factor
	}
	return c
}

// SortedUnitNames returns unit names in deterministic order.
func (f *Floorplan) SortedUnitNames() []string {
	names := make([]string, len(f.Units))
	for i, u := range f.Units {
		names[i] = u.Name
	}
	sort.Strings(names)
	return names
}
