package floorplan

// RC-scored 3D floorplanning: the Score hook wired to the certified
// reduced-order tier (internal/rom) so every anneal move is scored by
// the RC model, and VerifyBest wired to the full FVM solve so the
// committed placement is re-verified against the RC estimate's
// certified bound before Anneal3D returns. This is the tentpole's
// "anneal moves scored by ROM, accepted moves re-verified by the full
// solve" loop, exercised end to end.

import (
	"fmt"
	"math"
	"testing"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/rom"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

// rcSpecFor assembles the thermal stack a candidate placement
// implies: each tier's power rasterized over the shared outline.
func rcSpecFor(tiers []*Floorplan, die Rect, nx, ny int) *stack.Spec {
	maps := make([][]float64, len(tiers))
	for t, f := range tiers {
		shared := f.Clone()
		shared.Die = die
		maps[t] = shared.PowerMap(nx, ny)
	}
	return &stack.Spec{
		DieW: die.W, DieH: die.H,
		Tiers: len(tiers), NX: nx, NY: ny,
		PowerMaps:     maps,
		BEOL:          stack.ScaffoldedBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
}

func TestAnneal3DRCScored(t *testing.T) {
	const nx, ny = 8, 8
	rcEvals, fullVerifies := 0, 0
	var lastEst, lastBound float64
	opts := Anneal3DOptions{Tiers: 2, AreaWeight: 0.5, Seed: 7, Iterations: 40}
	// The die outline changes move to move, so each score reduces a
	// fresh model — still microseconds against the full solve it
	// replaces.
	opts.Score = func(tiers []*Floorplan, die Rect) (float64, error) {
		spec := rcSpecFor(tiers, die, nx, ny)
		scorer, err := rom.NewStackScorer(spec, rom.Options{})
		if err != nil {
			return 0, err
		}
		res, err := scorer.Score(spec.PowerMaps)
		if err != nil {
			return 0, err
		}
		rcEvals++
		lastEst, lastBound = res.PeakT, res.Bound
		return res.PeakT, nil
	}
	// Full-fidelity commit gate: the exact FVM peak must sit inside
	// the RC estimate's certified bound (plus the full solve's own
	// tolerance slack) or the placement is rejected.
	opts.VerifyBest = func(tiers []*Floorplan, die Rect) error {
		// Score ran on this exact placement last (the annealer rebuilds
		// the best state before verifying), so lastEst/lastBound do not
		// apply here — re-score to pair estimate and truth.
		spec := rcSpecFor(tiers, die, nx, ny)
		scorer, err := rom.NewStackScorer(spec, rom.Options{})
		if err != nil {
			return err
		}
		est, err := scorer.Score(spec.PowerMaps)
		if err != nil {
			return err
		}
		res, err := spec.Solve(solver.Options{Tol: 1e-8, MaxIter: 80000, Precond: solver.Multigrid, Workers: 1})
		if err != nil {
			return err
		}
		fullVerifies++
		if d := math.Abs(est.PeakT - res.MaxT()); d > est.Bound+1e-6*res.MaxT() {
			return fmt.Errorf("rc peak %g K off full peak %g K by %g, certified bound %g",
				est.PeakT, res.MaxT(), d, est.Bound)
		}
		return nil
	}
	res, err := Anneal3D(annealPlan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCScored != rcEvals || rcEvals < opts.Iterations {
		t.Errorf("RCScored = %d, rc evals = %d, iterations = %d", res.RCScored, rcEvals, opts.Iterations)
	}
	if res.FullVerified != 1 || fullVerifies != 1 {
		t.Errorf("FullVerified = %d, full solves = %d, want 1", res.FullVerified, fullVerifies)
	}
	if lastBound < 0 || lastEst <= 0 {
		t.Errorf("degenerate rc score: est %g bound %g", lastEst, lastBound)
	}
	for i, f := range res.Tiers {
		if err := f.Validate(); err != nil {
			t.Errorf("tier %d invalid: %v", i, err)
		}
	}
}
