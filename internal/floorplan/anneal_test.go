package floorplan

import (
	"context"
	"errors"
	"testing"
)

// annealPlan: six units, two hot, for floorplanning studies.
func annealPlan() *Floorplan {
	u := func(name string, x, y, w, h, pd float64, macro bool) Unit {
		return Unit{Name: name, Rect: Rect{X: um(x), Y: um(y), W: um(w), H: um(h)}, PowerDensity: pd, IsMacro: macro}
	}
	return &Floorplan{
		Name: "anneal",
		Die:  Rect{W: um(120), H: um(80)},
		Units: []Unit{
			u("hot1", 0, 0, 30, 30, 95e4, false),
			u("hot2", 30, 0, 30, 30, 90e4, false),
			u("sram1", 60, 0, 30, 30, 15e4, true),
			u("sram2", 90, 0, 30, 30, 15e4, true),
			u("logic", 0, 30, 60, 40, 50e4, false),
			u("ctrl", 60, 30, 60, 40, 35e4, false),
		},
		Nets: [][]string{{"hot1", "sram1"}, {"hot2", "sram2"}, {"logic", "ctrl", "hot1"}},
	}
}

func TestAnnealProducesValidFloorplan(t *testing.T) {
	res, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Floorplan.Validate(); err != nil {
		t.Fatalf("invalid result: %v", err)
	}
	if res.Area <= 0 || res.PeakProxy <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.Accepted == 0 {
		t.Error("annealer accepted no moves")
	}
}

// TestAnnealAreaVsTemperatureTradeoff: the paper reports that a pure
// temperature weighting costs ~16 % more area than a pure area
// weighting (Sec. III-B). Our annealer must show the same direction:
// temperature-weighted plans are larger and cooler (by proxy).
func TestAnnealAreaVsTemperatureTradeoff(t *testing.T) {
	areaRes, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 1.0, Seed: 7, Iterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	tempRes, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.0, Seed: 7, Iterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if tempRes.Area <= areaRes.Area {
		t.Errorf("temperature weighting should cost area: %g vs %g", tempRes.Area, areaRes.Area)
	}
	ratio := tempRes.Area / areaRes.Area
	if ratio > 1.8 {
		t.Errorf("area blow-up %gx implausible (paper: ~1.16x)", ratio)
	}
	if tempRes.PeakProxy >= areaRes.PeakProxy {
		t.Errorf("temperature weighting should cool the peak: %g vs %g", tempRes.PeakProxy, areaRes.PeakProxy)
	}
}

// TestAnnealPreservesUnits: every unit survives with its shape
// (possibly rotated) and power.
func TestAnnealPreservesUnits(t *testing.T) {
	in := annealPlan()
	res, err := Anneal(in, AnnealOptions{AreaWeight: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Floorplan.Units) != len(in.Units) {
		t.Fatalf("unit count changed: %d", len(res.Floorplan.Units))
	}
	for i, u := range res.Floorplan.Units {
		orig := in.Units[i]
		if u.Name != orig.Name || u.PowerDensity != orig.PowerDensity {
			t.Errorf("unit %d identity changed", i)
		}
		a1, a2 := u.Rect.Area(), orig.Rect.Area()
		if a1 < a2*0.999 || a1 > a2*1.001 {
			t.Errorf("unit %s area changed: %g vs %g", u.Name, a1, a2)
		}
		sameShape := (u.Rect.W == orig.Rect.W && u.Rect.H == orig.Rect.H) ||
			(u.Rect.W == orig.Rect.H && u.Rect.H == orig.Rect.W)
		if !sameShape {
			t.Errorf("unit %s reshaped beyond rotation", u.Name)
		}
		if orig.IsMacro && (u.Rect.W != orig.Rect.W || u.Rect.H != orig.Rect.H) {
			t.Errorf("macro %s was rotated", u.Name)
		}
	}
}

// TestAnnealWirelengthGuard: results stay within the 5 % HPWL bound
// (soft constraint — allow a little numerical spill).
func TestAnnealWirelengthGuard(t *testing.T) {
	res, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.0, Seed: 11, Iterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseHPWL <= 0 {
		t.Fatal("no baseline HPWL")
	}
	if res.HPWL > res.BaseHPWL*1.25 {
		t.Errorf("wirelength grew %.1f%%, guard is 5%%", 100*(res.HPWL/res.BaseHPWL-1))
	}
}

func TestAnnealDeterministic(t *testing.T) {
	a, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Area != b.Area || a.HPWL != b.HPWL {
		t.Error("annealer not deterministic for equal seeds")
	}
}

func TestAnnealRejections(t *testing.T) {
	// Too few units.
	one := &Floorplan{Die: Rect{W: 1, H: 1}, Units: []Unit{{Name: "a", Rect: Rect{W: 1, H: 1}, PowerDensity: 1}}}
	if _, err := Anneal(one, AnnealOptions{}); err == nil {
		t.Error("single-unit plan accepted")
	}
	// Invalid floorplan.
	bad := annealPlan()
	bad.Units[0].Rect.X = um(1000)
	if _, err := Anneal(bad, AnnealOptions{}); err == nil {
		t.Error("invalid plan accepted")
	}
	// Zero power.
	cold := annealPlan()
	for i := range cold.Units {
		cold.Units[i].PowerDensity = 0
	}
	if _, err := Anneal(cold, AnnealOptions{}); err == nil {
		t.Error("powerless plan accepted")
	}
}

func TestThermalProxyPrefersSpreading(t *testing.T) {
	// Two hot blocks adjacent vs far apart: the proxy must prefer
	// separation.
	mk := func(gap float64) *Floorplan {
		return &Floorplan{
			Die: Rect{W: um(200), H: um(50)},
			Units: []Unit{
				{Name: "a", Rect: Rect{X: 0, Y: 0, W: um(30), H: um(30)}, PowerDensity: 1e6},
				{Name: "b", Rect: Rect{X: um(30 + gap), Y: 0, W: um(30), H: um(30)}, PowerDensity: 1e6},
			},
		}
	}
	near := thermalProxy(mk(0))
	far := thermalProxy(mk(120))
	if far >= near {
		t.Errorf("proxy does not reward spreading: near=%g far=%g", near, far)
	}
}

// TestAnnealCancellation: a cancelled context stops the annealing
// loop immediately with a wrapped context error.
func TestAnnealCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Anneal(annealPlan(), AnnealOptions{AreaWeight: 0.5, Seed: 1, Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled anneal succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
}
