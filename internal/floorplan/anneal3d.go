package floorplan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Anneal3DOptions configures multi-tier thermal-aware floorplanning
// (Sec. III-B: "(1) duplicating the timing-driven single-tier
// starting floorplan ... to multiple tiers and (2) performing
// thermal-aware floorplanning"). Tiers share the die outline; the
// annealer perturbs each tier's placement independently, with a cost
// that penalizes vertically stacked hot spots — the 3D-specific
// failure a per-tier planner cannot see.
type Anneal3DOptions struct {
	Tiers int
	// AreaWeight ∈ [0,1] as in AnnealOptions; area here is the shared
	// die outline (max over tiers).
	AreaWeight float64
	// WirelengthBound guards per-tier HPWL (default 0.05).
	WirelengthBound float64
	// Iterations (default 300·units·tiers).
	Iterations int
	Seed       int64
	MaxPadding float64
	// Ctx, when non-nil, cancels the annealing loop: it is checked
	// every iteration and Anneal3D returns a wrapped ctx.Err().
	Ctx context.Context
	// Score, when non-nil, replaces the built-in column proxy as the
	// thermal term of the annealing cost. Callers inject a real
	// thermal model here — typically the certified reduced-order tier
	// (internal/rom.StackScorer) scoring the candidate's power maps —
	// without this package depending on the solver stack. It must be
	// deterministic for a given placement; lower is better. A returned
	// error aborts the anneal.
	Score func(tiers []*Floorplan, die Rect) (float64, error)
	// VerifyBest, when non-nil, re-verifies the best accepted
	// placement before Anneal3D commits to it — the full-fidelity
	// check of an RC-scored anneal. A returned error aborts the
	// anneal (the RC tier's ranking was not trustworthy).
	VerifyBest func(tiers []*Floorplan, die Rect) error
}

func (o Anneal3DOptions) withDefaults(nUnits int) (Anneal3DOptions, error) {
	if o.Tiers < 2 {
		return o, errors.New("floorplan: 3D annealing needs at least 2 tiers")
	}
	if o.WirelengthBound <= 0 {
		o.WirelengthBound = 0.05
	}
	if o.Iterations <= 0 {
		o.Iterations = 300 * nUnits * o.Tiers
	}
	if o.MaxPadding <= 0 {
		o.MaxPadding = 0.15
	}
	o.AreaWeight = math.Min(math.Max(o.AreaWeight, 0), 1)
	return o, nil
}

// Anneal3DResult carries the per-tier floorplans.
type Anneal3DResult struct {
	Tiers []*Floorplan
	// Die is the shared outline (every tier fits inside it).
	Die Rect
	// ColumnPeak is the stacked thermal proxy: the peak over (x, y)
	// of the tier-summed smoothed power density (W/m²).
	ColumnPeak float64
	// BaseColumnPeak is the proxy of the duplicated starting
	// floorplan, for comparison.
	BaseColumnPeak float64
	Accepted       int
	// RCScored counts Score-callback evaluations (0 when the built-in
	// proxy scored the anneal); FullVerified counts VerifyBest runs.
	RCScored     int
	FullVerified int
}

// columnProxy computes the stacked smoothed power peak of a set of
// tier floorplans over a shared outline.
func columnProxy(tiers []*Floorplan, die Rect) float64 {
	const n = 16
	acc := make([]float64, n*n)
	for _, f := range tiers {
		shared := f.Clone()
		shared.Die = die
		pm := shared.PowerMap(n, n)
		for i, q := range pm {
			acc[i] += q
		}
	}
	// Smooth the accumulated map with the same kernel thermalProxy
	// uses (acc is already a raw map).
	sm := make([]float64, n*n)
	smooth := func(src, dst []float64, strideA, strideB int) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				idx := a*strideA + b*strideB
				v := 2 * src[idx]
				if b > 0 {
					v += src[idx-strideB]
				} else {
					v += src[idx]
				}
				if b < n-1 {
					v += src[idx+strideB]
				} else {
					v += src[idx]
				}
				dst[idx] = v / 4
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		smooth(acc, sm, n, 1)
		smooth(sm, acc, 1, n)
	}
	peak := 0.0
	for _, v := range acc {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Anneal3D floorplans an N-tier stack from a single-tier seed: the
// seed is duplicated per tier, then tier placements are annealed
// jointly so hot units land over cool regions of neighboring tiers.
func Anneal3D(seed *Floorplan, opts Anneal3DOptions) (*Anneal3DResult, error) {
	if err := seed.Validate(); err != nil {
		return nil, err
	}
	nUnits := len(seed.Units)
	if nUnits < 2 {
		return nil, errors.New("floorplan: 3D annealing needs at least 2 units")
	}
	opts, err := opts.withDefaults(nUnits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	states := make([]*spState, opts.Tiers)
	for t := range states {
		st := &spState{
			plus:  make([]int, nUnits),
			minus: make([]int, nUnits),
			pad:   make([]float64, nUnits),
			rot:   make([]bool, nUnits),
		}
		for i := 0; i < nUnits; i++ {
			st.plus[i], st.minus[i] = i, i
		}
		states[t] = st
	}

	build := func(sts []*spState) ([]*Floorplan, Rect) {
		tiers := make([]*Floorplan, len(sts))
		var die Rect
		for t, st := range sts {
			rects, d := st.pack(seed.Units)
			nf := seed.Clone()
			nf.Die = d
			for i := range nf.Units {
				nf.Units[i].Rect = rects[i]
			}
			tiers[t] = nf
			die.W = math.Max(die.W, d.W)
			die.H = math.Max(die.H, d.H)
		}
		return tiers, die
	}

	// thermal is the cost's heat term: the injected Score callback when
	// one is wired (counted in RCScored), the column proxy otherwise.
	scored := 0
	thermal := func(tiers []*Floorplan, die Rect) (float64, error) {
		if opts.Score == nil {
			return columnProxy(tiers, die), nil
		}
		scored++
		return opts.Score(tiers, die)
	}

	baseTiers, baseDie := build(states)
	baseArea := baseDie.Area()
	// baseColumn is always the physical proxy (reported for
	// comparison); baseProxy normalizes whichever thermal term the
	// cost actually uses.
	baseColumn := columnProxy(baseTiers, baseDie)
	if baseColumn <= 0 {
		return nil, errors.New("floorplan: seed has no power")
	}
	baseProxy, err := thermal(baseTiers, baseDie)
	if err != nil {
		return nil, fmt.Errorf("floorplan: scoring the seed placement: %w", err)
	}
	if baseProxy <= 0 {
		return nil, errors.New("floorplan: seed placement scored non-positive")
	}
	baseHPWL := baseTiers[0].HPWL()

	cost := func(tiers []*Floorplan, die Rect) (float64, error) {
		heat, err := thermal(tiers, die)
		if err != nil {
			return 0, err
		}
		wArea := 0.25 + 0.75*opts.AreaWeight
		c := wArea*(die.Area()/baseArea) + (1-wArea)*(heat/baseProxy)
		if baseHPWL > 0 {
			for _, f := range tiers {
				if excess := f.HPWL()/baseHPWL - (1 + opts.WirelengthBound); excess > 0 {
					c += 10 * excess
				}
			}
		}
		return c, nil
	}

	cur := states
	curTiers, curDie := build(cur)
	curCost, err := cost(curTiers, curDie)
	if err != nil {
		return nil, err
	}
	best := cloneStates(cur)
	bestCost := curCost
	temp := 0.5
	cool := math.Pow(0.01/temp, 1/float64(opts.Iterations))
	accepted := 0

	for it := 0; it < opts.Iterations; it++ {
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("floorplan: 3D annealing cancelled after %d iterations: %w", it, cerr)
			}
		}
		cand := cloneStates(cur)
		st := cand[rng.Intn(len(cand))]
		switch rng.Intn(4) {
		case 0:
			a, b := rng.Intn(nUnits), rng.Intn(nUnits)
			st.plus[a], st.plus[b] = st.plus[b], st.plus[a]
		case 1:
			a, b := rng.Intn(nUnits), rng.Intn(nUnits)
			st.plus[a], st.plus[b] = st.plus[b], st.plus[a]
			st.minus[a], st.minus[b] = st.minus[b], st.minus[a]
		case 2:
			u := rng.Intn(nUnits)
			if !seed.Units[u].IsMacro {
				st.rot[u] = !st.rot[u]
			}
		case 3:
			u := rng.Intn(nUnits)
			st.pad[u] = math.Max(0, math.Min(opts.MaxPadding, st.pad[u]+(rng.Float64()-0.4)*0.1))
		}
		candTiers, candDie := build(cand)
		cc, err := cost(candTiers, candDie)
		if err != nil {
			return nil, fmt.Errorf("floorplan: scoring candidate at iteration %d: %w", it, err)
		}
		if cc < curCost || rng.Float64() < math.Exp((curCost-cc)/temp) {
			cur, curCost = cand, cc
			accepted++
			if cc < bestCost {
				best, bestCost = cloneStates(cand), cc
			}
		}
		temp *= cool
	}

	tiers, die := build(best)
	for t, f := range tiers {
		f.Die = die // shared outline
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("floorplan: 3D annealer produced invalid tier %d: %w", t, err)
		}
	}
	verified := 0
	if opts.VerifyBest != nil {
		if err := opts.VerifyBest(tiers, die); err != nil {
			return nil, fmt.Errorf("floorplan: best placement failed full-fidelity verification: %w", err)
		}
		verified = 1
	}
	return &Anneal3DResult{
		Tiers:          tiers,
		Die:            die,
		ColumnPeak:     columnProxy(tiers, die),
		BaseColumnPeak: baseColumn,
		Accepted:       accepted,
		RCScored:       scored,
		FullVerified:   verified,
	}, nil
}

func cloneStates(sts []*spState) []*spState {
	out := make([]*spState, len(sts))
	for i, s := range sts {
		out[i] = s.clone()
	}
	return out
}

// PowerMaps rasterizes each tier's power onto nx×ny grids over the
// shared die — ready for stack.Spec.PowerMaps.
func (r *Anneal3DResult) PowerMaps(nx, ny int) [][]float64 {
	out := make([][]float64, len(r.Tiers))
	for t, f := range r.Tiers {
		out[t] = f.PowerMap(nx, ny)
	}
	return out
}
