package floorplan

import (
	"context"
	"errors"
	"testing"
)

func TestAnneal3DProducesValidTiers(t *testing.T) {
	res, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 3, AreaWeight: 0.5, Seed: 5, Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 3 {
		t.Fatalf("got %d tiers", len(res.Tiers))
	}
	for i, f := range res.Tiers {
		if err := f.Validate(); err != nil {
			t.Errorf("tier %d invalid: %v", i, err)
		}
		if f.Die != res.Die {
			t.Errorf("tier %d does not share the die outline", i)
		}
	}
	if res.Accepted == 0 {
		t.Error("no moves accepted")
	}
	if res.ColumnPeak <= 0 || res.BaseColumnPeak <= 0 {
		t.Error("degenerate column proxies")
	}
}

// TestAnneal3DUnstacksHotspots: the whole point — the jointly
// annealed stack has a lower stacked-power peak than naive
// duplication.
func TestAnneal3DUnstacksHotspots(t *testing.T) {
	res, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 4, AreaWeight: 0.3, Seed: 11, Iterations: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColumnPeak >= res.BaseColumnPeak {
		t.Errorf("3D annealing did not reduce the stacked peak: %g vs %g",
			res.ColumnPeak, res.BaseColumnPeak)
	}
	// Tiers should actually differ from one another.
	same := true
	a, b := res.Tiers[0], res.Tiers[1]
	for i := range a.Units {
		if a.Units[i].Rect != b.Units[i].Rect {
			same = false
			break
		}
	}
	if same {
		t.Error("tier placements identical — no 3D awareness")
	}
}

func TestAnneal3DPowerMaps(t *testing.T) {
	res, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 2, AreaWeight: 0.5, Seed: 1, Iterations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	maps := res.PowerMaps(8, 8)
	if len(maps) != 2 || len(maps[0]) != 64 {
		t.Fatalf("bad map shapes")
	}
	// Power conservation per tier.
	cellArea := res.Die.Area() / 64
	want := annealPlan().TotalPower()
	for tIdx, m := range maps {
		sum := 0.0
		for _, q := range m {
			sum += q * cellArea
		}
		if sum < want*0.99 || sum > want*1.01 {
			t.Errorf("tier %d power %g, want %g", tIdx, sum, want)
		}
	}
}

func TestAnneal3DRejections(t *testing.T) {
	if _, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 1}); err == nil {
		t.Error("single tier accepted")
	}
	bad := annealPlan()
	bad.Units[0].Rect.X = um(1e6)
	if _, err := Anneal3D(bad, Anneal3DOptions{Tiers: 2}); err == nil {
		t.Error("invalid seed accepted")
	}
	cold := annealPlan()
	for i := range cold.Units {
		cold.Units[i].PowerDensity = 0
	}
	if _, err := Anneal3D(cold, Anneal3DOptions{Tiers: 2}); err == nil {
		t.Error("powerless seed accepted")
	}
	one := &Floorplan{Die: Rect{W: 1, H: 1}, Units: []Unit{{Name: "a", Rect: Rect{W: 1, H: 1}, PowerDensity: 1}}}
	if _, err := Anneal3D(one, Anneal3DOptions{Tiers: 2}); err == nil {
		t.Error("single-unit seed accepted")
	}
}

// TestAnneal3DCancellation: the multi-tier annealer honors the same
// cancellation contract as the single-tier one.
func TestAnneal3DCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 2, Seed: 1, Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled 3D anneal succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
}

// TestAnneal3DScoreHook: an injected Score callback replaces the
// column proxy as the thermal cost term, is called for the seed and
// every candidate, and VerifyBest sees exactly the committed result.
func TestAnneal3DScoreHook(t *testing.T) {
	opts := Anneal3DOptions{Tiers: 3, AreaWeight: 0.5, Seed: 5, Iterations: 200}
	calls := 0
	opts.Score = func(tiers []*Floorplan, die Rect) (float64, error) {
		calls++
		if len(tiers) != 3 {
			t.Fatalf("Score saw %d tiers", len(tiers))
		}
		return columnProxy(tiers, die), nil
	}
	var verifiedTiers []*Floorplan
	var verifiedDie Rect
	opts.VerifyBest = func(tiers []*Floorplan, die Rect) error {
		verifiedTiers, verifiedDie = tiers, die
		return nil
	}
	res, err := Anneal3D(annealPlan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCScored != calls || calls < opts.Iterations {
		t.Errorf("RCScored = %d, Score calls = %d, iterations = %d", res.RCScored, calls, opts.Iterations)
	}
	if res.FullVerified != 1 {
		t.Errorf("FullVerified = %d, want 1", res.FullVerified)
	}
	if len(verifiedTiers) != len(res.Tiers) || verifiedDie != res.Die {
		t.Error("VerifyBest did not see the committed placement")
	}
	for i := range res.Tiers {
		if verifiedTiers[i] != res.Tiers[i] {
			t.Fatalf("VerifyBest tier %d is not the committed tier", i)
		}
	}
	// Same seed with the equivalent built-in proxy: identical anneal.
	plain, err := Anneal3D(annealPlan(), Anneal3DOptions{Tiers: 3, AreaWeight: 0.5, Seed: 5, Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RCScored != 0 || plain.FullVerified != 0 {
		t.Errorf("built-in proxy run reports callback counts: %+v", plain)
	}
	if plain.ColumnPeak != res.ColumnPeak || plain.Die != res.Die {
		t.Error("proxy-equivalent Score changed the anneal trajectory")
	}
}

// TestAnneal3DScoreError: a failing Score aborts the anneal with a
// wrapped error, whether it fails on the seed or mid-anneal.
func TestAnneal3DScoreError(t *testing.T) {
	boom := errors.New("rc model exploded")
	opts := Anneal3DOptions{Tiers: 2, Seed: 1, Iterations: 50}
	opts.Score = func([]*Floorplan, Rect) (float64, error) { return 0, boom }
	if _, err := Anneal3D(annealPlan(), opts); !errors.Is(err, boom) {
		t.Fatalf("seed-score failure not propagated: %v", err)
	}
	n := 0
	opts.Score = func(tiers []*Floorplan, die Rect) (float64, error) {
		n++
		if n > 10 {
			return 0, boom
		}
		return columnProxy(tiers, die), nil
	}
	if _, err := Anneal3D(annealPlan(), opts); !errors.Is(err, boom) {
		t.Fatalf("mid-anneal score failure not propagated: %v", err)
	}
}

// TestAnneal3DVerifyBestError: a failed full-fidelity verification
// refuses to commit the placement.
func TestAnneal3DVerifyBestError(t *testing.T) {
	boom := errors.New("full solve disagrees")
	opts := Anneal3DOptions{Tiers: 2, Seed: 1, Iterations: 50}
	opts.VerifyBest = func([]*Floorplan, Rect) error { return boom }
	res, err := Anneal3D(annealPlan(), opts)
	if !errors.Is(err, boom) {
		t.Fatalf("verification failure not propagated: %v (res %+v)", err, res)
	}
}
