package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func um(v float64) float64 { return v * 1e-6 }

// testPlan builds a small 4-unit floorplan with a hot block.
func testPlan() *Floorplan {
	return &Floorplan{
		Name: "test",
		Die:  Rect{W: um(100), H: um(100)},
		Units: []Unit{
			{Name: "hot", Rect: Rect{X: 0, Y: 0, W: um(40), H: um(40)}, PowerDensity: 95e4},
			{Name: "sram", Rect: Rect{X: um(40), Y: 0, W: um(60), H: um(40)}, PowerDensity: 20e4, IsMacro: true},
			{Name: "logic", Rect: Rect{X: 0, Y: um(40), W: um(50), H: um(60)}, PowerDensity: 60e4},
			{Name: "ctrl", Rect: Rect{X: um(50), Y: um(40), W: um(50), H: um(60)}, PowerDensity: 40e4},
		},
		Nets: [][]string{{"hot", "sram"}, {"hot", "logic", "ctrl"}},
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	approx(t, r.Area(), 12, 1e-12, "area")
	approx(t, r.MaxX(), 4, 1e-12, "maxx")
	approx(t, r.MaxY(), 6, 1e-12, "maxy")
	cx, cy := r.Center()
	approx(t, cx, 2.5, 1e-12, "cx")
	approx(t, cy, 4, 1e-12, "cy")
	if !r.ContainsPoint(2, 3) || r.ContainsPoint(10, 3) {
		t.Error("ContainsPoint wrong")
	}
}

func TestRectOverlap(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 2, H: 2}
	b := Rect{X: 1, Y: 1, W: 2, H: 2}
	c := Rect{X: 2, Y: 0, W: 2, H: 2} // touches a's edge
	if !a.Overlaps(b) {
		t.Error("overlapping rects not detected")
	}
	if a.Overlaps(c) {
		t.Error("edge-touching rects should not overlap")
	}
	ov := a.Intersection(b)
	approx(t, ov.Area(), 1, 1e-12, "intersection area")
	if got := a.Intersection(c).Area(); got != 0 {
		t.Errorf("disjoint intersection area = %g", got)
	}
}

func TestRectContains(t *testing.T) {
	die := Rect{W: 10, H: 10}
	if !die.Contains(Rect{X: 0, Y: 0, W: 10, H: 10}) {
		t.Error("die should contain itself")
	}
	if die.Contains(Rect{X: 5, Y: 5, W: 6, H: 2}) {
		t.Error("overflowing rect contained")
	}
}

func TestValidate(t *testing.T) {
	f := testPlan()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlapping units rejected.
	bad := f.Clone()
	bad.Units[1].Rect = bad.Units[0].Rect
	if err := bad.Validate(); err == nil {
		t.Error("overlap accepted")
	}
	// Out-of-die unit rejected.
	bad2 := f.Clone()
	bad2.Units[0].Rect.X = um(90)
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-die accepted")
	}
	// Unknown net unit rejected.
	bad3 := f.Clone()
	bad3.Nets = append(bad3.Nets, []string{"ghost", "hot"})
	if err := bad3.Validate(); err == nil {
		t.Error("ghost net accepted")
	}
	// Empty die rejected.
	if err := (&Floorplan{}).Validate(); err == nil {
		t.Error("empty floorplan accepted")
	}
	// Negative power rejected.
	bad4 := f.Clone()
	bad4.Units[0].PowerDensity = -1
	if err := bad4.Validate(); err == nil {
		t.Error("negative power accepted")
	}
}

func TestPowerAccounting(t *testing.T) {
	f := testPlan()
	var want float64
	for _, u := range f.Units {
		want += u.PowerDensity * u.Rect.Area()
	}
	approx(t, f.TotalPower(), want, want*1e-12, "total power")
	approx(t, f.MeanPowerDensity(), want/f.Die.Area(), 1e-6, "mean density")
	approx(t, f.PeakPowerDensity(), 95e4, 1e-6, "peak density")
}

func TestPowerMapConservesPower(t *testing.T) {
	f := testPlan()
	for _, n := range []int{8, 16, 33} {
		pm := f.PowerMap(n, n)
		cellArea := f.Die.Area() / float64(n*n)
		sum := 0.0
		for _, q := range pm {
			sum += q * cellArea
		}
		approx(t, sum, f.TotalPower(), f.TotalPower()*1e-9, "power conservation")
	}
}

func TestPowerMapLocality(t *testing.T) {
	f := testPlan()
	pm := f.PowerMap(10, 10)
	// Cell (1,1) is inside "hot" (95e4); cell (8,1) inside "sram".
	approx(t, pm[1*10+1], 95e4, 1, "hot cell")
	approx(t, pm[1*10+8], 20e4, 1, "sram cell")
}

func TestHPWL(t *testing.T) {
	f := testPlan()
	got := f.HPWL()
	// Net 1: hot(20,20) - sram(70,20): 50+0 µm. Net 2: hot(20,20),
	// logic(25,70), ctrl(75,70): dx 55, dy 50.
	want := um(50) + um(55) + um(50)
	approx(t, got, want, 1e-12, "HPWL")
	// Single-unit nets contribute nothing.
	f.Nets = append(f.Nets, []string{"hot"})
	approx(t, f.HPWL(), want, 1e-12, "degenerate net")
}

func TestScaled(t *testing.T) {
	f := testPlan()
	s := f.Scaled(1.21)
	approx(t, s.Die.Area(), f.Die.Area()*1.21, 1e-15, "die area scales")
	approx(t, s.TotalPower(), f.TotalPower(), f.TotalPower()*1e-12, "power preserved")
	if err := s.Validate(); err != nil {
		t.Errorf("scaled plan invalid: %v", err)
	}
	// Degenerate factor falls back to identity.
	id := f.Scaled(0)
	approx(t, id.Die.Area(), f.Die.Area(), 1e-18, "identity scale")
}

func TestScaledPowerDensityProperty(t *testing.T) {
	f := testPlan()
	fn := func(raw float64) bool {
		factor := 1 + math.Mod(math.Abs(raw), 3)
		s := f.Scaled(factor)
		return math.Abs(s.MeanPowerDensity()-f.MeanPowerDensity()/factor) < 1e-3
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMacrosAndFind(t *testing.T) {
	f := testPlan()
	m := f.Macros()
	if len(m) != 1 || m[0].Name != "sram" {
		t.Errorf("Macros = %v", m)
	}
	if _, err := f.Find("ghost"); err == nil {
		t.Error("found ghost unit")
	}
	names := f.SortedUnitNames()
	if len(names) != 4 || names[0] != "ctrl" {
		t.Errorf("SortedUnitNames = %v", names)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := testPlan()
	c := f.Clone()
	c.Units[0].PowerDensity = 0
	c.Nets[0][0] = "changed"
	if f.Units[0].PowerDensity == 0 || f.Nets[0][0] == "changed" {
		t.Error("clone shares storage with original")
	}
}
