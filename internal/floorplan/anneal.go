package floorplan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// AnnealOptions configures the thermal-aware simulated-annealing
// floorplanner. The cost function mixes packed area and a thermal
// proxy (smoothed peak power density):
//
//	cost = AreaWeight·(area/area₀) + (1−AreaWeight)·(peak/peak₀)
//
// subject to a wirelength guard — the paper keeps total wirelength
// within 5 % of the timing-driven floorplan to preserve operating
// frequency — implemented as a steep penalty beyond the bound.
type AnnealOptions struct {
	// AreaWeight ∈ [0,1]: 1 = pure area packing, 0 = pure temperature.
	AreaWeight float64
	// WirelengthBound is the allowed fractional HPWL increase
	// (default 0.05).
	WirelengthBound float64
	// Iterations (default 400·#units).
	Iterations int
	// Seed for the deterministic RNG.
	Seed int64
	// MaxPadding is the largest whitespace margin a unit may receive
	// (fraction of its dimensions, default 0.15). Whitespace is how
	// the planner trades area for temperature.
	MaxPadding float64
	// Ctx, when non-nil, cancels the annealing loop: it is checked
	// every iteration and Anneal returns a wrapped ctx.Err().
	Ctx context.Context
}

func (o AnnealOptions) withDefaults(n int) AnnealOptions {
	if o.WirelengthBound <= 0 {
		o.WirelengthBound = 0.05
	}
	if o.Iterations <= 0 {
		o.Iterations = 400 * n
	}
	if o.MaxPadding <= 0 {
		o.MaxPadding = 0.15
	}
	if o.AreaWeight < 0 {
		o.AreaWeight = 0
	}
	if o.AreaWeight > 1 {
		o.AreaWeight = 1
	}
	return o
}

// AnnealResult is the floorplanner's outcome.
type AnnealResult struct {
	Floorplan *Floorplan
	Area      float64 // packed die area, m²
	PeakProxy float64 // smoothed peak power density, W/m²
	HPWL      float64
	BaseHPWL  float64
	Accepted  int // accepted moves (for diagnostics)
}

// spState is a sequence-pair floorplan state with per-unit padding.
type spState struct {
	plus, minus []int // permutations of unit indices
	pad         []float64
	rot         []bool // width/height swapped
}

func (s *spState) clone() *spState {
	return &spState{
		plus:  append([]int(nil), s.plus...),
		minus: append([]int(nil), s.minus...),
		pad:   append([]float64(nil), s.pad...),
		rot:   append([]bool(nil), s.rot...),
	}
}

// pack places units by sequence-pair longest-path packing and
// returns the placed rectangles and the bounding die.
func (s *spState) pack(units []Unit) ([]Rect, Rect) {
	n := len(units)
	posPlus := make([]int, n)
	posMinus := make([]int, n)
	for i, u := range s.plus {
		posPlus[u] = i
	}
	for i, u := range s.minus {
		posMinus[u] = i
	}
	w := make([]float64, n)
	h := make([]float64, n)
	for i, u := range units {
		w[i], h[i] = u.Rect.W, u.Rect.H
		if s.rot[i] && !u.IsMacro {
			w[i], h[i] = h[i], w[i]
		}
		w[i] *= 1 + s.pad[i]
		h[i] *= 1 + s.pad[i]
	}
	x := make([]float64, n)
	y := make([]float64, n)
	// a left of b ⇔ a before b in both sequences.
	// a below b ⇔ a after b in plus and before b in minus.
	for _, b := range s.plus {
		for a := 0; a < n; a++ {
			if a == b {
				continue
			}
			if posPlus[a] < posPlus[b] && posMinus[a] < posMinus[b] {
				x[b] = math.Max(x[b], x[a]+w[a])
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		b := s.plus[i]
		for a := 0; a < n; a++ {
			if a == b {
				continue
			}
			if posPlus[a] > posPlus[b] && posMinus[a] < posMinus[b] {
				y[b] = math.Max(y[b], y[a]+h[a])
			}
		}
	}
	rects := make([]Rect, n)
	var die Rect
	for i := range units {
		// Center the actual unit within its padded slot.
		padW := w[i] - w[i]/(1+s.pad[i])
		padH := h[i] - h[i]/(1+s.pad[i])
		rects[i] = Rect{X: x[i] + padW/2, Y: y[i] + padH/2, W: w[i] / (1 + s.pad[i]), H: h[i] / (1 + s.pad[i])}
		die.W = math.Max(die.W, x[i]+w[i])
		die.H = math.Max(die.H, y[i]+h[i])
	}
	return rects, die
}

// thermalProxy rasterizes power onto a coarse grid, applies a
// separable smoothing kernel approximating lateral spreading, and
// returns the peak smoothed density — a fast stand-in for the full
// thermal solve during annealing (the paper computes an analytic
// estimate at each step for the same reason).
func thermalProxy(f *Floorplan) float64 {
	const n = 16
	pm := f.PowerMap(n, n)
	// Two passes of a [1 2 1]/4 kernel per axis.
	tmp := make([]float64, n*n)
	smooth := func(src, dst []float64, strideA, strideB int) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				idx := a*strideA + b*strideB
				v := 2 * src[idx]
				if b > 0 {
					v += src[idx-strideB]
				} else {
					v += src[idx]
				}
				if b < n-1 {
					v += src[idx+strideB]
				} else {
					v += src[idx]
				}
				dst[idx] = v / 4
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		smooth(pm, tmp, n, 1) // along x
		smooth(tmp, pm, 1, n) // along y
	}
	peak := 0.0
	for _, v := range pm {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Anneal runs thermal-aware floorplanning on f and returns the best
// floorplan found. The input floorplan provides unit shapes, power
// densities, and nets; its current placement seeds the baseline area
// and wirelength.
func Anneal(f *Floorplan, opts AnnealOptions) (*AnnealResult, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n := len(f.Units)
	if n < 2 {
		return nil, errors.New("floorplan: annealing needs at least 2 units")
	}
	opts = opts.withDefaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	st := &spState{
		plus:  make([]int, n),
		minus: make([]int, n),
		pad:   make([]float64, n),
		rot:   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		st.plus[i], st.minus[i] = i, i
	}

	build := func(s *spState) *Floorplan {
		rects, die := s.pack(f.Units)
		nf := f.Clone()
		nf.Die = die
		for i := range nf.Units {
			nf.Units[i].Rect = rects[i]
		}
		return nf
	}

	base := build(st)
	baseArea := base.Die.Area()
	baseProxy := thermalProxy(base)
	baseHPWL := base.HPWL()
	if baseProxy <= 0 {
		return nil, errors.New("floorplan: floorplan has no power — thermal-aware annealing is meaningless")
	}

	cost := func(nf *Floorplan) float64 {
		// Even a "100 % temperature" weighting keeps a small area
		// pressure: real flows cannot grow the die without bound, and
		// the paper's pure-temperature corner lands at only +16 % area.
		wArea := 0.25 + 0.75*opts.AreaWeight
		c := wArea*(nf.Die.Area()/baseArea) + (1-wArea)*(thermalProxy(nf)/baseProxy)
		if baseHPWL > 0 {
			if excess := nf.HPWL()/baseHPWL - (1 + opts.WirelengthBound); excess > 0 {
				c += 10 * excess
			}
		}
		return c
	}

	cur := st
	curCost := cost(base)
	best := st.clone()
	bestCost := curCost
	temp := 0.5
	cool := math.Pow(0.01/temp, 1/float64(opts.Iterations))
	accepted := 0

	for it := 0; it < opts.Iterations; it++ {
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("floorplan: annealing cancelled after %d iterations: %w", it, cerr)
			}
		}
		cand := cur.clone()
		switch rng.Intn(4) {
		case 0: // swap in plus
			a, b := rng.Intn(n), rng.Intn(n)
			cand.plus[a], cand.plus[b] = cand.plus[b], cand.plus[a]
		case 1: // swap in both
			a, b := rng.Intn(n), rng.Intn(n)
			cand.plus[a], cand.plus[b] = cand.plus[b], cand.plus[a]
			cand.minus[a], cand.minus[b] = cand.minus[b], cand.minus[a]
		case 2: // rotate a soft unit
			u := rng.Intn(n)
			if !f.Units[u].IsMacro {
				cand.rot[u] = !cand.rot[u]
			}
		case 3: // perturb padding
			u := rng.Intn(n)
			cand.pad[u] = math.Max(0, math.Min(opts.MaxPadding, cand.pad[u]+(rng.Float64()-0.4)*0.1))
		}
		cf := build(cand)
		cc := cost(cf)
		if cc < curCost || rng.Float64() < math.Exp((curCost-cc)/temp) {
			cur, curCost = cand, cc
			accepted++
			if cc < bestCost {
				best, bestCost = cand.clone(), cc
			}
		}
		temp *= cool
	}

	bf := build(best)
	if err := bf.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: annealer produced invalid floorplan: %w", err)
	}
	return &AnnealResult{
		Floorplan: bf,
		Area:      bf.Die.Area(),
		PeakProxy: thermalProxy(bf),
		HPWL:      bf.HPWL(),
		BaseHPWL:  baseHPWL,
		Accepted:  accepted,
	}, nil
}
