package thermalscaffold_test

// End-to-end gate on the paper's headline claims, at regression
// fidelity. If this test passes, the reproduction's story holds:
// scaffolding turns a ~4-tier thermal ceiling into a 12-tier stack at
// ~10 % footprint and ~3 % delay.

import (
	"testing"

	"thermalscaffold/internal/core"
	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
)

func TestHeadlineReproduction(t *testing.T) {
	cfg := core.Config{
		Design: design.Gemmini(), Sink: heatsink.TwoPhase(),
		NX: 12, NY: 12, TaskSpread: -1,
	}

	// Observation 1: scaffolding carries 12 tiers below 125 °C at a
	// ~10 % footprint, ~3 % delay cost.
	scaf, err := core.EvaluateMinPenalty(cfg, core.Scaffolding, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !scaf.Feasible {
		t.Fatalf("scaffolding cannot hold 12 tiers: %v", scaf)
	}
	if scaf.FootprintPenalty > 0.18 {
		t.Errorf("scaffolding footprint %.1f%% (paper: 10%%)", 100*scaf.FootprintPenalty)
	}
	if scaf.DelayPenalty > 0.05 {
		t.Errorf("scaffolding delay %.1f%% (paper: 3%%)", 100*scaf.DelayPenalty)
	}

	// Observation 2: the conventional flow cannot reach 12 tiers
	// without several times the penalty.
	conv, err := core.EvaluateMinPenalty(cfg, core.Conventional3D, 12)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Feasible && conv.FootprintPenalty < 3*scaf.FootprintPenalty {
		t.Errorf("conventional footprint %.1f%% too close to scaffolding %.1f%%",
			100*conv.FootprintPenalty, 100*scaf.FootprintPenalty)
	}

	// The 3-4x tier-scaling claim at the 10 % design point.
	scafN, _, err := core.MaxTiersAtBudget(cfg, core.Scaffolding, 0.10, 14)
	if err != nil {
		t.Fatal(err)
	}
	convN, _, err := core.MaxTiersAtBudget(cfg, core.Conventional3D, 0.10, 14)
	if err != nil {
		t.Fatal(err)
	}
	if scafN < 2*convN {
		t.Errorf("tier scaling %d vs %d — below 2x (paper: 3-4x)", scafN, convN)
	}
}
