GO ?= go

# COVER_FLOOR is the ratcheted minimum total statement coverage for
# `make cover` — raise it when coverage rises, never lower it.
COVER_FLOOR ?= 87.0

.PHONY: all build test vet race equivalence serve-stress fuzz-short cover bench bench-json bench-serve bench-cluster bench-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the parallel
# solver kernels (internal/parallel, internal/solver) must stay
# race-clean at every worker count the tests exercise.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# equivalence re-runs the serial-vs-parallel equivalence and
# determinism suite twice (-count=2 catches run-to-run
# nondeterminism that a single pass would miss). Batch and Engine
# cover the multi-RHS solver and the persistent-pool path, which must
# stay bitwise identical to independent plain solves; TraceResume pins
# the trace checkpoint/resume bitwise contract at every worker count
# and precision tier. The rom conformance suite rides along: 200
# randomized cross-fidelity problems whose certified bounds are a hard
# contract against the full solver.
equivalence:
	$(GO) test -race -run 'Equivalence|Batch|Engine|TraceResume|Family' -count=2 ./internal/solver/ ./internal/parallel/
	$(GO) test -race -run 'Equivalence|Window' -count=2 ./internal/serve/
	$(GO) test -race -run 'Conformance' -count=2 ./internal/rom/
	$(GO) test -race -run 'Conformance' -count=2 ./internal/cluster/

# serve-stress hammers the evaluation service under the race detector:
# concurrent clients with random cancellations, coalescing bursts,
# cache evictions, drain, and goroutine-leak checks — doubled to catch
# run-to-run flakiness.
serve-stress:
	$(GO) test -race -count=2 -run 'Serve|Golden' ./internal/serve/ ./cmd/thermserve/
	$(GO) test -race -count=2 -run 'Fault|Reheal|Ring' ./internal/cluster/

# fuzz-short runs each native fuzz target for a bounded burst — long
# enough to shake out validation panics, short enough for CI. The
# committed seed corpora (f.Add + testdata/fuzz) always replay in the
# plain test run too.
fuzz-short:
	$(GO) test -fuzz FuzzProblemValidate -fuzztime 10s -run '^$$' ./internal/solver/
	$(GO) test -fuzz FuzzFamilyAssembly -fuzztime 10s -run '^$$' ./internal/solver/
	$(GO) test -fuzz FuzzMeshNew -fuzztime 10s -run '^$$' ./internal/mesh/
	$(GO) test -fuzz FuzzEvalKey -fuzztime 10s -run '^$$' ./internal/serve/
	$(GO) test -fuzz FuzzROMReduce -fuzztime 10s -run '^$$' ./internal/rom/
	$(GO) test -fuzz FuzzTraceRequest -fuzztime 10s -run '^$$' ./internal/specio/
	$(GO) test -fuzz FuzzPeerCacheKey -fuzztime 10s -run '^$$' ./internal/cluster/
	$(GO) test -fuzz FuzzRingMembership -fuzztime 10s -run '^$$' ./internal/cluster/

# cover enforces the ratcheted coverage floor (COVER_FLOOR).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the ratcheted floor $(COVER_FLOOR)%"; exit 1; }

bench:
	$(GO) test -run xxx -bench . -benchtime=2x ./internal/solver/

# bench-json snapshots the solver benchmark suite into
# BENCH_solver.json. -count=5 repeats every benchmark five times;
# benchjson folds the repeats into min (ns_per_op — the least-noise
# estimate on a shared box) and median (median_ns_per_op), so
# successive PRs can track the performance trajectory without single
# -run noise swamping the signal. The rom suite rides along so the
# rc-vs-full speedup (x_vs_full) and certified bound (bound_K) land
# in the same snapshot as the full-fidelity rows they compare to.
bench-json:
	{ $(GO) test -run xxx -bench . -benchtime=2x -count=5 ./internal/solver/ && \
	  $(GO) test -run xxx -bench . -benchtime=100x -count=5 ./internal/rom/; } | $(GO) run ./cmd/benchjson > BENCH_solver.json

# bench-serve snapshots the 100-request mixed hot/cold service
# throughput pair (cache+coalescing vs cold-every-time) and the
# cold-family storm pair (micro-batching window off vs on) into
# BENCH_serve.json — the cached run must stay ≥5× the no-cache
# baseline, and the window=on run ≥1.5× faster than window=0 on the
# same storm. Same -count=5 min/median protocol as bench-json.
# The cold-family pair runs at a longer -benchtime: each op is a
# 32-request storm, and at 3x the one-time warmup (key memos, GC
# growth) still dominates the per-op signal.
bench-serve:
	{ $(GO) test -run xxx -bench 'Serve100|ServeBatch' -benchtime=3x -count=5 ./internal/serve/ && \
	  $(GO) test -run xxx -bench 'ServeColdFamily' -benchtime=8x -count=5 ./internal/serve/; } | $(GO) run ./cmd/benchjson > BENCH_serve.json

# bench-cluster snapshots the shard-aware scale-out story into
# BENCH_cluster.json: the mixed cache-heavy workload at 1/2/4
# in-process nodes, with throughput (rps) and tail latency (p99_ms)
# per row. The hard acceptance: the nodes=4 row's rps must exceed
# nodes=1 — the ring's aggregate cache capacity holding a working set
# that a single node's LRU thrashes on. Same -count=5 min/median
# protocol as bench-json.
bench-cluster:
	$(GO) test -run xxx -bench 'ClusterMixed' -benchtime=1x -count=5 ./internal/cluster/ | $(GO) run ./cmd/benchjson > BENCH_cluster.json

# bench-smoke is the CI guard against benchmark rot: one fast pass
# over a representative slice of every suite (fused solver kernels,
# small-n parallel overhead, batch vs independent, placement loop,
# service throughput). It checks the benchmarks still build and run —
# timing numbers on shared CI runners are not compared.
bench-smoke:
	$(GO) test -run xxx -bench 'SteadyPrecond/precond=multigrid/n=16|SteadyBatch|SmallNReduce|SteadyMG96Workers/precision=f32/workers=1|MGCyclePrecision|TransientTrace/workers=1/segments=4' -benchtime=1x ./internal/solver/ ./internal/parallel/
	$(GO) test -run xxx -bench 'PlacementLoop' -benchtime=1x ./internal/pillar/
	$(GO) test -run xxx -bench 'Serve100Mixed|ServeColdFamily/window=on|SteadyFamily/cached=on' -benchtime=1x ./internal/serve/ ./internal/solver/
	$(GO) test -run xxx -bench 'ROMEval/n=16' -benchtime=1x ./internal/rom/
	$(GO) test -run xxx -bench 'ClusterMixed/nodes=2' -benchtime=1x ./internal/cluster/

# ci is the gate: vet + race-clean full suite + doubled equivalence
# (which also pins determinism with telemetry attached) + the service
# stress suite + fuzz bursts + the ratcheted coverage floor.
ci: race equivalence serve-stress fuzz-short cover
