GO ?= go

.PHONY: all build test vet race equivalence bench bench-json ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the parallel
# solver kernels (internal/parallel, internal/solver) must stay
# race-clean at every worker count the tests exercise.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# equivalence re-runs the serial-vs-parallel equivalence and
# determinism suite twice (-count=2 catches run-to-run
# nondeterminism that a single pass would miss).
equivalence:
	$(GO) test -race -run Equivalence -count=2 ./internal/solver/ ./internal/parallel/

bench:
	$(GO) test -run xxx -bench . -benchtime=2x ./internal/solver/

# bench-json snapshots the solver benchmark suite into
# BENCH_solver.json (name, ns/op, harness iterations, workers) so
# successive PRs can track the performance trajectory.
bench-json:
	$(GO) test -run xxx -bench . -benchtime=2x ./internal/solver/ | $(GO) run ./cmd/benchjson > BENCH_solver.json

# ci is the gate: vet + race-clean full suite + doubled equivalence.
ci: race equivalence
