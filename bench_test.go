package thermalscaffold_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its experiment at regression fidelity and reports
// the headline quantity as a custom metric, so `go test -bench=.`
// both times the harness and re-checks the reproduced shapes.

import (
	"testing"

	"thermalscaffold/internal/core"
	"thermalscaffold/internal/design"
	"thermalscaffold/internal/experiments"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/materials"
	"thermalscaffold/internal/pillar"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

var quick = experiments.Options{Quick: true}

func BenchmarkFig2bPenaltyComparison(b *testing.B) {
	var last *experiments.Fig2bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2b(quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Scaffolding.FootprintPenalty, "scaffold-footprint-%")
	b.ReportMetric(100*last.DummyVias.FootprintPenalty, "dummyvia-footprint-%")
}

func BenchmarkFig2cIsoPenalty(b *testing.B) {
	var last *experiments.Fig2cResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2c(quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.RiseRatio, "rise-ratio-x")
}

func BenchmarkFig3LateralSpreading(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(6, 25)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ReachTD/last.ReachULK, "reach-gain-x")
}

func BenchmarkFig4DiamondConductivity(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig4()
	}
	b.ReportMetric(last.K160nm, "k160nm-W/m/K")
}

func BenchmarkFig5DielectricConstant(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.PorosityForEps4, "porosity-for-eps4")
}

func BenchmarkFig7aBEOLHomogenization(b *testing.B) {
	var last *experiments.Fig7aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7a(quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[1].KLat, "scaffolded-upper-klat")
}

func BenchmarkFig7bFillVsArea(b *testing.B) {
	var last *experiments.Fig7bResult
	for i := 0; i < b.N; i++ {
		last = experiments.Fig7b()
	}
	b.ReportMetric(last.Points[len(last.Points)-1].Fill, "max-fill")
}

func BenchmarkFig9TierScaling(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(quick, 13)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.MaxTiers["Gemmini"][core.Scaffolding]), "gemmini-scaffold-tiers")
	b.ReportMetric(float64(last.MaxTiers["Gemmini"][core.Conventional3D]), "gemmini-conv-tiers")
}

func BenchmarkFig10PenaltyMaps(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(quick, 13)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.ScafTiers[len(last.ScafTiers)-1]), "scaffold-tiers-max-budget")
}

func BenchmarkFig11HeatsinkExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(quick, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12PowerGatingCodesign(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(4, 17)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.SinglePillarTDReduction, "single-td-reduction-%")
}

func BenchmarkTableIPenalties(b *testing.B) {
	var last *experiments.TableIResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI(quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Evals["Gemmini"][core.Scaffolding].FootprintPenalty, "gemmini-scaffold-fp-%")
}

func BenchmarkMacroCooling(b *testing.B) {
	var last *experiments.MacroCoolingResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MacroCooling(4, 17)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.RiseULK/last.RiseTD, "macro-rise-reduction-x")
}

func BenchmarkPillarMisalignment(b *testing.B) {
	var last *experiments.MisalignmentResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Misalignment(4, 21)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.TolTD/1e-9, "td-tolerance-nm")
}

func BenchmarkTierResistanceShare(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.TierResistanceShare(10)
		if err != nil {
			b.Fatal(err)
		}
		share = s
	}
	b.ReportMetric(100*share, "tier-share-%")
}

// BenchmarkAblationPillarSize sweeps the pillar footprint: smaller
// pillars conduct less (size-dependent copper), larger ones risk
// electrical/mechanical impact — the paper picks 100 nm.
func BenchmarkAblationPillarSize(b *testing.B) {
	sizes := []float64{36e-9, 100e-9, 1e-6}
	var fp [3]float64
	for i := 0; i < b.N; i++ {
		for j, side := range sizes {
			p, err := pillar.Place(pillar.Request{
				Design: design.Gemmini(), Tiers: 10,
				Sink: heatsink.TwoPhase(), TTargetC: 125,
				BEOL:     stack.ScaffoldedBEOL(),
				Geometry: pillar.Geometry{FootprintSide: side, KeepoutFactor: 1.05},
				NX:       12, NY: 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			fp[j] = p.FootprintPenalty
		}
	}
	b.ReportMetric(100*fp[0], "fp36nm-%")
	b.ReportMetric(100*fp[1], "fp100nm-%")
	b.ReportMetric(100*fp[2], "fp1um-%")
}

// BenchmarkAblationDielectricGrade sweeps the thermal dielectric's
// film quality (in-plane conductivity) through the scaffold flow.
func BenchmarkAblationDielectricGrade(b *testing.B) {
	grades := []float64{materials.KThermalDielectricMin, 300, materials.KThermalDielectricMax}
	var fp [3]float64
	for i := 0; i < b.N; i++ {
		for j, k := range grades {
			td := materials.ThermalDielectric(k)
			beol := stack.ScaffoldedBEOL()
			// Scale the homogenized upper group with the film grade.
			scale := td.KLateral / materials.KThermalDielectricMin
			beol.UpperKLat *= scale
			beol.UpperKVert *= td.KVertical / 30
			p, err := pillar.Place(pillar.Request{
				Design: design.Gemmini(), Tiers: 12,
				Sink: heatsink.TwoPhase(), TTargetC: 125,
				BEOL: beol, NX: 12, NY: 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			fp[j] = p.FootprintPenalty
		}
	}
	b.ReportMetric(100*fp[0], "fp-k105-%")
	b.ReportMetric(100*fp[2], "fp-k500-%")
}

// BenchmarkAblationScheduling quantifies the conventional flow's
// scheduling benefit at a heterogeneous task mix.
func BenchmarkAblationScheduling(b *testing.B) {
	var dT float64
	for i := 0; i < b.N; i++ {
		off := core.Config{Design: design.Gemmini(), Sink: heatsink.TwoPhase(), NX: 12, NY: 12, TaskSpread: -1}
		on := off
		on.TaskSpread = 0.3
		e0, err := core.EvaluateAtBudget(off, core.Conventional3D, 8, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		e1, err := core.EvaluateAtBudget(on, core.Conventional3D, 8, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		dT = e0.TMaxC - e1.TMaxC
	}
	b.ReportMetric(dT, "scheduling-benefit-K")
}

// BenchmarkAblationMemoryLayer quantifies the interleaved memory
// sub-layer's contribution to the thermal wall.
func BenchmarkAblationMemoryLayer(b *testing.B) {
	d := design.Gemmini()
	pm := d.Tier.PowerMap(12, 12)
	var dT float64
	for i := 0; i < b.N; i++ {
		mk := func(mem bool) float64 {
			spec := &stack.Spec{
				DieW: d.Tier.Die.W, DieH: d.Tier.Die.H,
				Tiers: 8, NX: 12, NY: 12,
				PowerMaps: [][]float64{pm}, BEOL: stack.ConventionalBEOL(),
				Sink: heatsink.TwoPhase(), MemoryPerTier: mem,
			}
			res, err := spec.Solve(solverOpts())
			if err != nil {
				b.Fatal(err)
			}
			return res.MaxT()
		}
		dT = mk(true) - mk(false)
	}
	b.ReportMetric(dT, "memory-layer-cost-K")
}

// solverOpts pins Workers to 1 (the exact legacy serial path) so the
// end-to-end figure benchmarks stay comparable across machines with
// different core counts; see internal/solver/bench_test.go for the
// worker-count sweeps.
func solverOpts() solver.Options { return solver.Options{Tol: 1e-6, MaxIter: 80000, Workers: 1} }
