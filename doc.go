// Package thermalscaffold reproduces "Thermal Scaffolding for
// Ultra-Dense 3D Integrated Circuits" (Rich et al., DAC 2023) as a
// pure-Go library: materials models for the nanocrystalline-diamond
// thermal dielectric, a finite-volume 3D-IC thermal simulator, BEOL
// homogenization, the pillar placement algorithm, the conventional
// thermal-aware baselines (metallization, floorplanning, scheduling),
// and a co-design engine that regenerates every table and figure of
// the paper's evaluation.
//
// The solver's hot path runs on a deterministic worker pool
// (internal/parallel): solver.Options.Workers selects the width
// (0 = one per CPU core, 1 = the exact serial legacy path), chunk
// boundaries are independent of the worker count, and reductions
// combine partials in a fixed order, so results are bit-identical
// run-to-run and across worker counts ≥ 2. See DESIGN.md §6.
//
// PCG offers three preconditioners (solver.Options.Precond): Jacobi,
// z-line (per-column Thomas, the default for chip stacks), and
// geometric multigrid (x/y semi-coarsening with red-black z-line
// Gauss-Seidel smoothing), whose iteration count stays nearly flat
// under grid refinement — the default for the repeated solves of the
// pillar placement loop and 3.5–4× faster end-to-end on large grids.
// The cmd/thermsim and cmd/paperfigs binaries expose the choice as
// -precond jacobi|zline|multigrid. See DESIGN.md §7.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// the paper-vs-measured comparison. The root-level benchmarks
// (bench_test.go) time one regeneration of each experiment; the
// cmd/paperfigs binary prints them at full fidelity.
package thermalscaffold
