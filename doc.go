// Package thermalscaffold reproduces "Thermal Scaffolding for
// Ultra-Dense 3D Integrated Circuits" (Rich et al., DAC 2023) as a
// pure-Go library: materials models for the nanocrystalline-diamond
// thermal dielectric, a finite-volume 3D-IC thermal simulator, BEOL
// homogenization, the pillar placement algorithm, the conventional
// thermal-aware baselines (metallization, floorplanning, scheduling),
// and a co-design engine that regenerates every table and figure of
// the paper's evaluation.
//
// The solver's hot path runs on a deterministic worker pool
// (internal/parallel): solver.Options.Workers selects the width
// (0 = one per CPU core, 1 = the exact serial legacy path), chunk
// boundaries are independent of the worker count, and reductions
// combine partials in a fixed order, so results are bit-identical
// run-to-run and across worker counts ≥ 2. See DESIGN.md §6.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// the paper-vs-measured comparison. The root-level benchmarks
// (bench_test.go) time one regeneration of each experiment; the
// cmd/paperfigs binary prints them at full fidelity.
package thermalscaffold
