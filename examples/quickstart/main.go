// Quickstart: build a small 3-tier 3D-IC stack, solve its steady
// temperature field, and print the peak — the minimal use of the
// library's stack + solver API.
package main

import (
	"fmt"
	"log"

	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
	"thermalscaffold/internal/units"
)

func main() {
	const nx, ny = 16, 16

	// A uniform 53 W/cm² tier — the paper's per-tier Gemmini density.
	pm := make([]float64, nx*ny)
	for i := range pm {
		pm[i] = units.WPerCm2ToWPerM2(53)
	}

	spec := &stack.Spec{
		DieW: 690e-6, DieH: 660e-6, // Gemmini-sized die
		Tiers: 3, NX: nx, NY: ny,
		PowerMaps:     [][]float64{pm},
		BEOL:          stack.ConventionalBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}

	res, err := spec.Solve(solver.Options{Tol: 1e-7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("3-tier stack at %.0f W/cm² total flux\n",
		units.WPerM2ToWPerCm2(spec.TotalFlux()))
	fmt.Printf("peak junction temperature: %s\n", units.FormatTemp(res.MaxT()))
	for t := 0; t < spec.Tiers; t++ {
		fmt.Printf("  tier %d: %s\n", t, units.FormatTemp(res.TierMaxT(t)))
	}

	// Now swap in the thermal dielectric + 10% pillars and go to 12
	// tiers — the paper's headline configuration.
	pf := stack.NewPillarField(nx, ny)
	for i := range pf.Coverage {
		pf.Coverage[i] = 0.10
	}
	spec.Tiers = 12
	spec.BEOL = stack.ScaffoldedBEOL()
	spec.Pillars = pf
	res, err = spec.Solve(solver.Options{Tol: 1e-7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n12-tier scaffolded stack at %.0f W/cm² total flux\n",
		units.WPerM2ToWPerCm2(spec.TotalFlux()))
	fmt.Printf("peak junction temperature: %s (limit: 125.0°C)\n",
		units.FormatTemp(res.MaxT()))
}
