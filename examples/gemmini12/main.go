// Gemmini12 runs the paper's headline experiment end-to-end: take
// the Gemmini DNN accelerator, stack it 12 tiers high, and let the
// Sec. III-A pillar placement algorithm find the cheapest thermal
// scaffold that keeps the junction below 125 °C — then compare
// against the conventional thermal-aware metallization baseline.
package main

import (
	"fmt"
	"log"

	"thermalscaffold/internal/core"
	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/pillar"
	"thermalscaffold/internal/stack"
)

func main() {
	d := design.Gemmini()
	fmt.Printf("%s: %.1f W/cm² per tier, %d floorplan units (%d SRAM macros)\n",
		d.Name, d.MeanDensityWPerCm2(), len(d.Tier.Units), len(d.Tier.Macros()))

	// Run the placement algorithm directly for full detail.
	p, err := pillar.Place(pillar.Request{
		Design: d, Tiers: 12,
		Sink: heatsink.TwoPhase(), TTargetC: 125,
		BEOL: stack.ScaffoldedBEOL(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscaffolding placement at 12 tiers: T=%.1f°C, %.1f%% footprint, %d pillars\n",
		p.TMaxC, 100*p.FootprintPenalty, p.TotalPillars)
	fmt.Println("per-unit pillar allocation:")
	for _, u := range p.Units {
		if u.Pillars == 0 {
			continue
		}
		fmt.Printf("  %-16s coverage %5.1f%%  P_min %8d  pitch %.2f µm\n",
			u.Unit, 100*u.Coverage, u.Pillars, u.Pitch*1e6)
	}

	// Compare the three strategies through the co-design engine.
	cfg := core.Config{Design: d, Sink: heatsink.TwoPhase()}
	fmt.Println("\nstrategy comparison at 12 tiers (minimum penalty to stay <125°C):")
	for _, s := range []core.Strategy{core.Scaffolding, core.VerticalOnly, core.Conventional3D} {
		e, err := core.EvaluateMinPenalty(cfg, s, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v\n", e)
	}
}
