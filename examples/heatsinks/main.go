// Heatsinks explores how heatsink technology interacts with thermal
// scaffolding (the paper's Fig. 11): two-phase boiling-water cooling
// versus room-temperature Si-integrated microfluidics, at both the
// 125 °C and 85 °C junction limits.
package main

import (
	"fmt"
	"log"

	"thermalscaffold/internal/core"
	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
)

func main() {
	d := design.Gemmini()
	for _, sink := range []heatsink.Model{heatsink.TwoPhase(), heatsink.Microfluidic()} {
		fmt.Printf("\n=== %s ===\n", sink)
		for _, s := range []core.Strategy{core.Conventional3D, core.Scaffolding} {
			cfg := core.Config{Design: d, Sink: sink}
			evals, err := core.SweepTiers(cfg, s, 0.10, 14)
			if err != nil {
				log.Fatal(err)
			}
			n125, n85 := 0, 0
			fmt.Printf("%-16s T(N): ", s)
			for _, e := range evals {
				fmt.Printf("%5.0f", e.TMaxC)
				if e.TMaxC <= 125 {
					n125 = e.Tiers
				}
				if e.TMaxC <= 85 {
					n85 = e.Tiers
				}
			}
			fmt.Printf("   → %d tiers @125°C, %d tiers @85°C\n", n125, n85)
		}
	}
	fmt.Println("\nNote: boiling water forces a 100°C ambient, so the 85°C limit is")
	fmt.Println("only reachable with single-phase (microfluidic) cooling — and there")
	fmt.Println("scaffolding still buys extra tiers (paper Observation 3).")
}
