// Transient explores the time domain the paper's Observation 5
// points at: activity traces (load/compute/burst phases) and dynamic
// task swapping across tiers, simulated with the backward-Euler
// transient solver.
package main

import (
	"fmt"
	"log"

	"thermalscaffold/internal/design"
	"thermalscaffold/internal/heatsink"
	"thermalscaffold/internal/power"
	"thermalscaffold/internal/sched"
	"thermalscaffold/internal/solver"
	"thermalscaffold/internal/stack"
)

func main() {
	d := design.Gemmini()
	const nx, ny = 12, 12
	spec := &stack.Spec{
		DieW: d.Tier.Die.W, DieH: d.Tier.Die.H,
		Tiers: 8, NX: nx, NY: ny,
		PowerMaps:     [][]float64{d.Tier.PowerMap(nx, ny)},
		BEOL:          stack.ScaffoldedBEOL(),
		Sink:          heatsink.TwoPhase(),
		MemoryPerTier: true,
	}
	pf := stack.NewPillarField(nx, ny)
	for i := range pf.Coverage {
		pf.Coverage[i] = 0.08
	}
	spec.Pillars = pf

	// The matmul activity trace: the thermal design point is the
	// burst phase, but the average is much lower.
	trace := power.MatmulTrace()
	array := power.Gemmini16()
	fmt.Printf("matmul trace: period %.0f µs, mean util %.0f%%, peak util %.0f%%\n",
		trace.Period()*1e6, 100*trace.MeanUtil(), 100*trace.PeakUtil())
	fmt.Printf("array power: mean %.1f mW, peak %.1f mW\n",
		1e3*trace.MeanPower(array), 1e3*trace.PeakPower(array))

	tau := sched.ThermalTimeConstant(spec)
	fmt.Printf("\nstack thermal time constant: %.1f µs\n", tau*1e6)

	// Dynamic task rotation: four tasks of very different power,
	// swapped across tiers every τ/2.
	tasks := sched.SpreadTasks(8, 0.5)
	res, err := sched.SimulateRotation(spec, tasks, tau/2, tau/8, 16, solver.Options{Tol: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic rotation over %d swaps: peak %.1f°C, settled %.1f°C\n",
		res.Rotations, res.PeakC, res.FinalC)

	// Static comparison points.
	maps, ranks, err := sched.Schedule(spec, tasks, solver.Options{Tol: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	static := *spec
	static.PowerMaps = maps
	rs, err := static.Solve(solver.Options{Tol: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static thermal-aware assignment: %.1f°C steady peak\n", rs.MaxT()-273.15)
	fmt.Printf("tier thermal resistances (K/W): sink-adjacent %.1f → top %.1f\n",
		ranks[0].Resistance, ranks[len(ranks)-1].Resistance)
	fmt.Println("\nAs the paper notes (Sec. III-B), dynamic swapping tracks the static")
	fmt.Println("assignment when the rotation period sits below the stack's time constant.")
}
