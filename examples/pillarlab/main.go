// Pillarlab studies single-pillar physics (the paper's Fig. 3 and
// Observations 4b/4c): how far one pillar's cooling reaches with and
// without the thermal dielectric, how much a hard macro heats when
// pillars cannot be placed inside it, and how much tier-to-tier
// pillar misalignment each dielectric tolerates.
package main

import (
	"fmt"
	"log"

	"thermalscaffold/internal/experiments"
	"thermalscaffold/internal/pillar"
	"thermalscaffold/internal/stack"
)

func main() {
	// Fig. 3: lateral cooling reach of one pillar.
	f3, err := experiments.Fig3(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single pillar in a 95 W/cm² field (Fig. 3):")
	fmt.Printf("  3 K cooling reach: %.1f µm (ultra-low-k) → %.1f µm (thermal dielectric)\n",
		f3.ReachULK*1e6, f3.ReachTD*1e6)

	// The analytic healing length behind it.
	ulk, td := experiments.PillarReach()
	fmt.Printf("  analytic healing length λ: %.1f µm → %.1f µm\n", ulk*1e6, td*1e6)
	fmt.Printf("  (fin model: %g W/m/K pillar columns)\n", pillar.Default().EffectiveK())

	// Observation 4b: hard macro with surrounding pillars.
	mc, err := experiments.MacroCooling(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n25 µm hard macro between four pillars (Observation 4b):")
	fmt.Printf("  macro-center rise: %.1f K (ultra-low-k) → %.1f K (thermal dielectric); paper: 15 → 5\n",
		mc.RiseULK, mc.RiseTD)

	// Observation 4c: pillar misalignment tolerance.
	mis, err := experiments.Misalignment(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npillar misalignment across tiers (Observation 4c):")
	fmt.Printf("  tolerable offset within 3 K: %.0f nm (ultra-low-k) → %.0f nm (thermal dielectric); paper: 300 nm → 1 µm\n",
		mis.TolULK*1e9, mis.TolTD*1e9)

	// How the spreading length scales with coverage.
	fmt.Println("\nhealing length vs pillar column density (12 tiers):")
	for _, cov := range []float64{0.02, 0.05, 0.10, 0.20} {
		u := pillar.SpreadingLength(stack.ConventionalBEOL(), 12, cov, 105, true)
		s := pillar.SpreadingLength(stack.ScaffoldedBEOL(), 12, cov, 105, true)
		fmt.Printf("  coverage %4.0f%%: λ = %4.1f µm (ulk) / %4.1f µm (td)\n", 100*cov, u*1e6, s*1e6)
	}
}
